package ilp

import (
	"fmt"
	"math"
	"time"
)

// This file implements the Bertsekas auction algorithm for the same
// rectangular min-cost assignment problem Hungarian solves, plus the
// zero-alloc AuctionInto variant over a caller-owned Workspace and the
// cross-window WarmState price reuse (see warm.go).
//
// Why it is exact, not approximate: the solver first maps every cost to
// an integer grid (costs that are already integers map 1:1 — no
// rounding at all), then multiplies the grid by (size+1) and runs
// ε-scaling down to ε = 1. A completed auction assignment is within
// size·ε of the optimum; with every cost a multiple of (size+1) and
// ε = 1 that slack is smaller than the distance between two distinct
// totals, so the assignment is exactly optimal for the integer grid.
// Integer-valued inputs therefore get the same total as Hungarian,
// bit-for-bit; non-integer inputs are solved exactly on a grid with
// ~2^30 resolution steps (the quantization error per cell is
// |cost|·2^-30 — far below float noise for travel times).

// costLimit bounds the scaled integer cost magnitude so worst-case
// auction prices (≲ size·maxC) stay far from int64 overflow.
const costLimit = int64(1) << 46

// negInfVal is a sentinel "no second-best object" value, chosen so that
// best-negInfVal never overflows.
const negInfVal = math.MinInt64 / 4

// SolveStats describes one Assigner/auction solve, for telemetry and
// flight-recorder events.
type SolveStats struct {
	Kind       SolverKind
	Rows       int
	Cols       int
	Bids       int // bidding iterations across all ε phases
	Phases     int
	WarmSeeded int  // columns whose price was seeded from WarmState
	WarmKept   int  // rows reseated from the previous window's matching
	Restarted  bool // warm phase hit its bid cap and restarted cold
}

// Workspace owns the auction solver's scratch so repeated solves
// allocate nothing once the buffers have grown to the instance size
// (the PR-3/PR-5 caller-owned-workspace idiom). A Workspace must not be
// shared between concurrent solvers. The zero value is ready to use.
type Workspace struct {
	c      []int64 // scaled costs, flattened size*size
	price  []int64 // per-column auction price
	owner  []int   // column -> row (-1 free)
	assign []int   // row -> column (-1 unassigned)
	stack  []int   // unassigned rows pending a bid
	out    []int   // result buffer, len = rows
	// colIndex maps warm column keys back to indices when reseating the
	// previous window's matching; lazily allocated, reused across solves.
	colIndex map[int64]int
	stats    SolveStats
}

// Stats returns the last solve's statistics.
func (ws *Workspace) Stats() SolveStats { return ws.stats }

// grow sizes the scratch for a size×size padded instance with n result
// rows, reusing previous capacity.
func (ws *Workspace) grow(size, n int) {
	cells := size * size
	if cap(ws.c) < cells {
		ws.c = make([]int64, cells)
		ws.price = make([]int64, size)
		ws.owner = make([]int, size)
		ws.assign = make([]int, size)
		ws.stack = make([]int, 0, size)
	}
	ws.c = ws.c[:cells]
	if cap(ws.price) < size {
		ws.price = make([]int64, size)
		ws.owner = make([]int, size)
		ws.assign = make([]int, size)
	}
	ws.price = ws.price[:size]
	ws.owner = ws.owner[:size]
	ws.assign = ws.assign[:size]
	ws.stack = ws.stack[:0]
	if cap(ws.out) < n {
		ws.out = make([]int, n)
	}
	ws.out = ws.out[:n]
}

// validateCost checks the shared Hungarian/Auction input contract:
// rectangular shape, no NaN, no -Inf (+Inf marks a forbidden cell).
// It returns rows, cols and the maximum finite |cost|.
func validateCost(cost [][]float64) (n, m int, maxAbs float64, err error) {
	n = len(cost)
	if n == 0 {
		return 0, 0, 0, nil
	}
	m = len(cost[0])
	for i := range cost {
		if len(cost[i]) != m {
			return 0, 0, 0, fmt.Errorf("ilp: ragged cost matrix at row %d", i)
		}
		for j, c := range cost[i] {
			switch {
			case math.IsNaN(c):
				return 0, 0, 0, fmt.Errorf("ilp: NaN cost at (%d,%d)", i, j)
			case math.IsInf(c, -1):
				return 0, 0, 0, fmt.Errorf("ilp: -Inf cost at (%d,%d)", i, j)
			case !math.IsInf(c, 1) && math.Abs(c) > maxAbs:
				maxAbs = math.Abs(c)
			}
		}
	}
	return n, m, maxAbs, nil
}

// costScale picks the integer grid for a padded size×size instance:
// scale 1 when every finite cost is already integral and fits the
// overflow budget (the exact path), otherwise the largest power-of-two
// scale that keeps the padded costs within costLimit.
func costScale(cost [][]float64, size int, maxAbs float64, integral bool) float64 {
	// qBound is the largest |quantized cost| such that the padding value
	// bigQ = 2*qBound*size+1, multiplied by (size+1) for ε-scaling,
	// stays under costLimit.
	qBound := float64((costLimit/int64(size+1) - 1) / int64(2*size))
	if integral && maxAbs <= qBound {
		return 1
	}
	scale := 1.0
	for maxAbs*scale*2 <= qBound {
		scale *= 2
	}
	for maxAbs*scale > qBound && scale > 1e-30 {
		scale /= 2
	}
	return scale
}

// integralCosts reports whether every finite cost is an exact integer.
func integralCosts(cost [][]float64) bool {
	for i := range cost {
		for _, c := range cost[i] {
			if math.IsInf(c, 1) {
				continue
			}
			if c != math.Trunc(c) {
				return false
			}
		}
	}
	return true
}

// Auction solves the rectangular min-cost assignment problem with the
// Bertsekas ε-scaling auction algorithm. The contract is identical to
// Hungarian: assign[i] is row i's column or -1, Infeasible cells are
// never assigned, and ErrInfeasible is returned when a perfect matching
// of the smaller side is impossible. On integer-valued costs the total
// is exactly optimal (equal to Hungarian's); see the package comment at
// the top of this file for the argument.
func Auction(cost [][]float64) (assign []int, total float64, err error) {
	var ws Workspace
	a, total, err := AuctionInto(&ws, cost)
	if a == nil {
		return nil, total, err
	}
	return append([]int(nil), a...), total, err
}

// AuctionInto is Auction over caller-owned scratch: the returned slice
// aliases ws and is overwritten by the next solve. Steady-state solves
// of same-shape instances allocate nothing.
func AuctionInto(ws *Workspace, cost [][]float64) ([]int, float64, error) {
	return auctionSolve(ws, cost, nil, nil, nil)
}

// auctionSolve is the shared cold/warm implementation. warm (optional)
// seeds column prices keyed by colKeys and receives the final prices
// and row profits back; rowKeys/colKeys must then match the matrix
// shape.
func auctionSolve(ws *Workspace, cost [][]float64, warm *WarmState, rowKeys, colKeys []int64) ([]int, float64, error) {
	n, m, maxAbs, err := validateCost(cost)
	if err != nil {
		return nil, 0, err
	}
	if n == 0 {
		return nil, 0, nil
	}
	if m == 0 {
		ws.grow(1, n)
		out := ws.out[:n]
		for i := range out {
			out[i] = -1
		}
		return out, 0, fmt.Errorf("ilp: empty columns")
	}
	if warm != nil && (len(rowKeys) != n || len(colKeys) != m) {
		return nil, 0, fmt.Errorf("ilp: warm keys %dx%d do not match cost %dx%d",
			len(rowKeys), len(colKeys), n, m)
	}
	size := n
	if m > size {
		size = m
	}
	solveStart := time.Now()

	ws.grow(size, n)
	scale := costScale(cost, size, maxAbs, integralCosts(cost))
	// bigQ dominates any real sub-assignment so optimal solutions use
	// the minimum possible number of padded/infeasible cells.
	qBound := int64(math.Round(maxAbs * scale))
	bigQ := 2*qBound*int64(size) + 1
	mult := int64(size + 1)
	for i := 0; i < size; i++ {
		row := ws.c[i*size : (i+1)*size]
		for j := 0; j < size; j++ {
			if i < n && j < m && !math.IsInf(cost[i][j], 1) {
				row[j] = int64(math.Round(cost[i][j]*scale)) * mult
			} else {
				row[j] = bigQ * mult
			}
		}
	}
	maxC := bigQ * mult

	ws.stats = SolveStats{Kind: SolverAuction, Rows: n, Cols: m}
	colKey := func(j int) int64 {
		if j < m {
			return colKeys[j]
		}
		return padKey(j)
	}
	warmSeeded := 0
	if warm != nil {
		for j := 0; j < size; j++ {
			ws.price[j] = 0
		}
		priceUnit := scale * float64(mult)
		for j := 0; j < size; j++ {
			if p, ok := warm.price[colKey(j)]; ok {
				ws.price[j] = int64(math.Round(p * priceUnit))
				warmSeeded++
			}
		}
	}
	ws.stats.WarmSeeded = warmSeeded

	if warmSeeded > 0 {
		// Warm fast path. Reseat each real row on its previous window's
		// column wherever that seat still satisfies ε-complementary
		// slackness at ε = 1 under the seeded prices (stale seats are
		// simply dropped), then auction off only the leftover REAL rows
		// at ε = 1 under a bid cap. Padding rows never bid here: every
		// padding cell costs the same bigQ, so their placement is cost-
		// irrelevant, and auctioning them replays a musical-chairs price
		// war over the plateau columns that dwarfs the real work. The
		// resulting real-row matching is accepted only when certify's
		// LP-duality gap proves it exactly optimal; that keeps the fast
		// path sound even though ε-CS alone does not guarantee
		// asymmetric optimality from arbitrary seeded prices.
		for j := 0; j < size; j++ {
			ws.owner[j] = -1
		}
		for i := 0; i < size; i++ {
			ws.assign[i] = -1
		}
		ws.stats.WarmKept = ws.seatAndFloor(warm, n, size, rowKeys, colKey)
		bidCap := 24*size + 64
		solved := false
		if ws.auctionPhase(n, size, 1, bidCap, true) {
			ws.stats.Phases++
			solved = ws.certify(n, size, mult)
		} else {
			ws.stats.Phases++
		}
		if !solved {
			// Ladder fallback: drop the fast phase's seats (they were
			// validated against floored prices the phase has since moved)
			// and reseat everything — padding rows included — with fresh
			// ε-CS checks against the current prices, then escalate ε
			// geometrically under the bid cap until a full square phase
			// completes — kept pairs stay ε-CS at any larger ε — and
			// descend the normal schedule from there, restoring the
			// ε-scaling invariant and with it exactness. Only when even
			// the top rung overruns the cap does the solve restart cold.
			for j := 0; j < size; j++ {
				ws.owner[j] = -1
			}
			for i := 0; i < size; i++ {
				ws.assign[i] = -1
			}
			ws.seatFromMatch(warm, 0, size, size, rowKeys, colKey)
			top := maxC / 4
			if top < 1 {
				top = 1
			}
			for eps := int64(1); ; {
				ok := ws.auctionPhase(size, size, eps, bidCap, true)
				ws.stats.Phases++
				if ok {
					for eps > 1 {
						eps /= 7
						if eps < 1 {
							eps = 1
						}
						ws.auctionPhase(size, size, eps, 0, false)
						ws.stats.Phases++
					}
					solved = true
					break
				}
				if eps >= top {
					break
				}
				eps *= 343
				if eps > top {
					eps = top
				}
			}
		}
		if !solved {
			ws.stats.Restarted = true
			ws.coldSchedule(size, maxC)
		}
	} else {
		ws.coldSchedule(size, maxC)
	}

	out, total, err := ws.extract(cost, n, m)
	// Absorb duals whenever a solve produced an assignment — including
	// ErrInfeasible solves, which the dispatchers treat as usable (some
	// teams simply stay unmatched); skipping those would leave the warm
	// state empty exactly on the flood-heavy windows that recur.
	if warm != nil && out != nil {
		warm.absorb(ws, cost, rowKeys, colKeys, scale*float64(mult))
	}
	observeAuction(solveStart, size, ws.stats.Bids)
	return out, total, err
}

// coldSchedule runs the ε-scaling schedule from maxC/4 down to 1,
// resetting any warm prices first.
func (ws *Workspace) coldSchedule(size int, maxC int64) {
	for j := range ws.price {
		ws.price[j] = 0
	}
	eps := maxC / 4
	if eps < 1 {
		eps = 1
	}
	for {
		ws.auctionPhase(size, size, eps, 0, false)
		ws.stats.Phases++
		if eps == 1 {
			return
		}
		eps /= 7
		if eps < 1 {
			eps = 1
		}
	}
}

// seatAndFloor prepares the warm fast path: it optimistically reseats
// every real row on its previous window's column, floors every other
// column's price to the global minimum, and then drops seats violating
// ε-CS at ε = 1 until none remain (flooring a dropped seat's column can
// invalidate other seats, so validation iterates to a fixpoint). The
// flooring is what makes the fast path certifiable: stale prices on
// columns the previous matching vacated would otherwise both hide
// genuinely cheap columns from the bidding and leave free columns above
// the price floor, voiding certify's gap ≤ n argument. Returns the
// number of rows left seated.
func (ws *Workspace) seatAndFloor(warm *WarmState, n, size int, rowKeys []int64, colKey func(int) int64) int {
	if len(warm.match) > 0 {
		if ws.colIndex == nil {
			ws.colIndex = make(map[int64]int, size)
		}
		clear(ws.colIndex)
		for j := 0; j < size; j++ {
			ws.colIndex[colKey(j)] = j
		}
		for i := 0; i < n; i++ {
			ck, ok := warm.match[rowKeys[i]]
			if !ok {
				continue
			}
			if j, ok := ws.colIndex[ck]; ok && ws.owner[j] < 0 {
				ws.owner[j] = i
				ws.assign[i] = j
			}
		}
	}
	// Flooring only matters when padding rows exist (n < size): a
	// completed phase then leaves size-n columns free, and any free
	// column above the price floor voids certify's gap ≤ n argument
	// while hiding genuinely cheap columns from the bidding. With
	// n == size a completed phase is a perfect matching — no free
	// columns, certificate passes on ε-CS alone — and flooring would
	// only force prices to climb back up bid by bid.
	doFloor := n < size
	floor := ws.price[0]
	for j := 1; j < size; j++ {
		if ws.price[j] < floor {
			floor = ws.price[j]
		}
	}
	kept := 0
	for j := 0; j < size; j++ {
		if ws.owner[j] < 0 {
			if doFloor {
				ws.price[j] = floor
			}
		} else {
			kept++
		}
	}
	for iter := 0; kept > 0; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			j := ws.assign[i]
			if j < 0 {
				continue
			}
			row := ws.c[i*size : (i+1)*size]
			best := int64(negInfVal)
			for k := 0; k < size; k++ {
				if v := -row[k] - ws.price[k]; v > best {
					best = v
				}
			}
			if -row[j]-ws.price[j] >= best-1 {
				continue
			}
			ws.assign[i] = -1
			ws.owner[j] = -1
			if doFloor {
				ws.price[j] = floor
			}
			kept--
			changed = true
		}
		if !changed {
			break
		}
		if iter >= 8 {
			// Pathological cascade: unseat the rest (sound — they just
			// bid normally) rather than loop towards O(n²·size).
			for i := 0; i < n; i++ {
				if j := ws.assign[i]; j >= 0 {
					ws.assign[i] = -1
					ws.owner[j] = -1
					if doFloor {
						ws.price[j] = floor
					}
				}
			}
			kept = 0
			break
		}
	}
	return kept
}

// seatFromMatch reseats rows [lo,hi) on their previous window's columns
// (looked up through warm.match) wherever that seat satisfies ε-CS at
// ε = 1 under the current prices, and returns how many rows it seated.
// colKey maps a column index to its warm key.
func (ws *Workspace) seatFromMatch(warm *WarmState, lo, hi, size int, rowKeys []int64, colKey func(int) int64) int {
	if len(warm.match) == 0 {
		return 0
	}
	if ws.colIndex == nil {
		ws.colIndex = make(map[int64]int, size)
	}
	clear(ws.colIndex)
	for j := 0; j < size; j++ {
		ws.colIndex[colKey(j)] = j
	}
	kept := 0
	for i := lo; i < hi; i++ {
		rk := padKey(i)
		if i < len(rowKeys) {
			rk = rowKeys[i]
		}
		ck, ok := warm.match[rk]
		if !ok {
			continue
		}
		j, ok := ws.colIndex[ck]
		if !ok || ws.owner[j] >= 0 {
			continue
		}
		row := ws.c[i*size : (i+1)*size]
		best := int64(negInfVal)
		for k := 0; k < size; k++ {
			if v := -row[k] - ws.price[k]; v > best {
				best = v
			}
		}
		if -row[j]-ws.price[j] >= best-1 {
			ws.owner[j] = i
			ws.assign[i] = j
			kept++
		}
	}
	return kept
}

// certify proves the current real-row matching exactly optimal via LP
// duality, or returns false (proving nothing). For the asymmetric
// problem min Σ c_ij x_ij with Σ_j x_ij = 1, Σ_i x_ij ≤ 1, any
// feasible dual (π, μ ≥ 0) with π_i ≤ c_ij + μ_j bounds the optimum
// below by Σπ − Σμ; since every matching's total is a multiple of
// mult, a primal-dual gap < mult pins the matching to the optimum. The
// dual is built from the auction prices shifted so the most expensive
// free column lands at μ = 0 — in the warm steady state free columns
// are the price floor, so the certificate passes whenever the fast
// phase's seats really are optimal, and a perfect matching (n == size)
// passes unconditionally because ε-CS at ε = 1 leaves a gap ≤ n < mult.
func (ws *Workspace) certify(n, size int, mult int64) bool {
	var delta int64
	for j := 0; j < size; j++ {
		if ws.price[j] > costLimit {
			// Degenerate prices: sums below could overflow; decline.
			return false
		}
		if ws.owner[j] < 0 && ws.price[j] > delta {
			delta = ws.price[j]
		}
	}
	var total, dual int64
	for j := 0; j < size; j++ {
		if mu := ws.price[j] - delta; mu > 0 {
			dual -= mu
		}
	}
	for i := 0; i < n; i++ {
		j := ws.assign[i]
		if j < 0 {
			return false
		}
		row := ws.c[i*size : (i+1)*size]
		total += row[j]
		best := int64(math.MaxInt64)
		for k := 0; k < size; k++ {
			mu := ws.price[k] - delta
			if mu < 0 {
				mu = 0
			}
			if v := row[k] + mu; v < best {
				best = v
			}
		}
		dual += best
	}
	return total-dual < mult
}

// auctionPhase runs one forward-auction phase at the given ε: each
// unassigned row below rows bids best-second+ε on its best column,
// displacing the previous owner (prices persist across phases). The
// warm fast path passes rows = n so cost-indifferent padding rows stay
// out of the bidding; full square phases pass rows = size. keep
// preserves the current partial assignment — valid only when every
// kept pair satisfies ε-CS at this ε, as seeded seats and pairs formed
// at a smaller ε do; otherwise all rows start unassigned. bidCap > 0
// aborts the phase (returning false) once that many bids have been
// placed; 0 means unbounded. Dense finite costs guarantee termination
// of an unbounded phase.
func (ws *Workspace) auctionPhase(rows, size int, eps int64, bidCap int, keep bool) bool {
	if !keep {
		for j := 0; j < size; j++ {
			ws.owner[j] = -1
		}
		for i := 0; i < size; i++ {
			ws.assign[i] = -1
		}
	}
	ws.stack = ws.stack[:0]
	for i := rows - 1; i >= 0; i-- {
		if ws.assign[i] < 0 {
			ws.stack = append(ws.stack, i)
		}
	}
	bids := 0
	for len(ws.stack) > 0 {
		i := ws.stack[len(ws.stack)-1]
		ws.stack = ws.stack[:len(ws.stack)-1]
		row := ws.c[i*size : (i+1)*size]
		best, second := int64(negInfVal), int64(negInfVal)
		bj := -1
		for j := 0; j < size; j++ {
			v := -row[j] - ws.price[j]
			if v > best {
				second = best
				best = v
				bj = j
			} else if v > second {
				second = v
			}
		}
		bid := eps
		if second != negInfVal {
			bid = best - second + eps
		}
		ws.price[bj] += bid
		if prev := ws.owner[bj]; prev >= 0 {
			ws.assign[prev] = -1
			ws.stack = append(ws.stack, prev)
		}
		ws.owner[bj] = i
		ws.assign[i] = bj
		bids++
		if bidCap > 0 && bids > bidCap {
			ws.stats.Bids += bids
			return false
		}
	}
	ws.stats.Bids += bids
	return true
}

// extract maps the padded square assignment back to the original
// rectangle, exactly like Hungarian: matches through padded or
// Infeasible cells count as unassigned, and a matching smaller than the
// smaller side is ErrInfeasible.
func (ws *Workspace) extract(cost [][]float64, n, m int) ([]int, float64, error) {
	out := ws.out[:n]
	for i := range out {
		out[i] = -1
	}
	total := 0.0
	matched := 0
	for i := 0; i < n; i++ {
		j := ws.assign[i]
		if j < 0 || j >= m || math.IsInf(cost[i][j], 1) {
			continue
		}
		out[i] = j
		total += cost[i][j]
		matched++
	}
	need := n
	if m < n {
		need = m
	}
	if matched < need {
		return out, total, fmt.Errorf("%w: only %d of %d assignable", ErrInfeasible, matched, need)
	}
	return out, total, nil
}
