package ilp

import (
	"errors"
	"math"
	"testing"
)

// decodeFuzzMatrix turns a fuzz byte stream into a small cost matrix:
// the first two bytes pick the shape, the rest fill cells — bytes 250+
// become special values (Infeasible, NaN, -Inf, huge) so the validators
// are exercised.
func decodeFuzzMatrix(data []byte) [][]float64 {
	if len(data) < 2 {
		return nil
	}
	rows := int(data[0]%9) + 1
	cols := int(data[1]%9) + 1
	cost := make([][]float64, rows)
	k := 2
	for i := range cost {
		cost[i] = make([]float64, cols)
		for j := range cost[i] {
			if k >= len(data) {
				cost[i][j] = float64(i + j)
				continue
			}
			b := data[k]
			k++
			switch {
			case b == 255:
				cost[i][j] = Infeasible
			case b == 254:
				cost[i][j] = math.NaN()
			case b == 253:
				cost[i][j] = math.Inf(-1)
			case b == 252:
				cost[i][j] = 1e18
			case b >= 250:
				cost[i][j] = -float64(b) * 1e9
			default:
				cost[i][j] = float64(b) - 125
			}
		}
	}
	return cost
}

// feasibleInteger reports whether every cell is a modest finite integer
// — the regime where both solvers are exact in float64 arithmetic, so
// FuzzAuction can demand bit-equal totals.
func feasibleInteger(cost [][]float64) bool {
	for i := range cost {
		for j := range cost[i] {
			c := cost[i][j]
			if math.IsNaN(c) || math.IsInf(c, 0) || c != math.Trunc(c) || math.Abs(c) > 1e6 {
				return false
			}
		}
	}
	return true
}

func checkSolverOutput(t *testing.T, cost [][]float64, assign []int, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrInfeasible) {
		return // validation errors carry no assignment contract
	}
	if len(assign) != len(cost) {
		t.Fatalf("assign length %d != rows %d", len(assign), len(cost))
	}
	seen := map[int]bool{}
	for i, j := range assign {
		if j < 0 {
			continue
		}
		if j >= len(cost[i]) || seen[j] {
			t.Fatalf("bad assignment %v", assign)
		}
		seen[j] = true
		if math.IsInf(cost[i][j], 1) {
			t.Fatalf("infeasible cell (%d,%d) assigned", i, j)
		}
	}
}

// FuzzHungarian: arbitrary shapes and special values must never panic,
// and every returned assignment must be a valid matching.
func FuzzHungarian(f *testing.F) {
	f.Add([]byte{3, 3, 10, 20, 30, 40, 50, 60, 70, 80, 90})
	f.Add([]byte{2, 2, 255, 10, 10, 255})
	f.Add([]byte{1, 1, 254})
	f.Add([]byte{4, 2, 253, 252, 251, 250, 0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		cost := decodeFuzzMatrix(data)
		if cost == nil {
			return
		}
		assign, _, err := Hungarian(cost)
		checkSolverOutput(t, cost, assign, err)
	})
}

// FuzzAuction: no panics on arbitrary input, valid matchings always,
// and exact total agreement with Hungarian on feasible integer
// instances.
func FuzzAuction(f *testing.F) {
	f.Add([]byte{3, 3, 10, 20, 30, 40, 50, 60, 70, 80, 90})
	f.Add([]byte{2, 2, 255, 10, 10, 255})
	f.Add([]byte{5, 1, 254, 253, 1, 2, 3})
	f.Add([]byte{2, 4, 100, 200, 50, 150, 75, 175, 25, 125})
	f.Fuzz(func(t *testing.T, data []byte) {
		cost := decodeFuzzMatrix(data)
		if cost == nil {
			return
		}
		aAssign, aTotal, aErr := Auction(cost)
		checkSolverOutput(t, cost, aAssign, aErr)
		if !feasibleInteger(cost) {
			return
		}
		hAssign, hTotal, hErr := Hungarian(cost)
		checkSolverOutput(t, cost, hAssign, hErr)
		if (aErr == nil) != (hErr == nil) {
			t.Fatalf("err mismatch: auction %v hungarian %v (cost %v)", aErr, hErr, cost)
		}
		if aErr == nil && aTotal != hTotal {
			t.Fatalf("totals diverge: auction %v hungarian %v (cost %v)", aTotal, hTotal, cost)
		}
	})
}
