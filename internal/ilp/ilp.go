// Package ilp implements the integer-programming substrate the paper's
// comparison methods rely on: the Hungarian algorithm for min-cost
// assignment (the core of both Schedule [5] and Rescue [8] dispatch
// formulations) and an exact branch-and-bound solver for general 0/1
// integer programs. A latency model reproduces the paper's observation
// that IP-based dispatching takes on the order of minutes (~300 s),
// which is what destroys the baselines' rescue timeliness (Figure 13).
package ilp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Infeasible marks a forbidden assignment cost.
var Infeasible = math.Inf(1)

// ErrInfeasible is returned when no feasible solution exists.
var ErrInfeasible = errors.New("ilp: infeasible")

// Hungarian solves the rectangular min-cost assignment problem: cost[i][j]
// is the cost of assigning row i (e.g. a rescue team) to column j (e.g. a
// request). It returns assign with assign[i] = column of row i or -1 when
// the row is left unassigned (more rows than columns), plus the total
// cost. Entries equal to Infeasible are never assigned; if a perfect
// matching of the smaller side is impossible, ErrInfeasible is returned.
func Hungarian(cost [][]float64) (assign []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	for i := range cost {
		if len(cost[i]) != m {
			return nil, 0, fmt.Errorf("ilp: ragged cost matrix at row %d", i)
		}
	}
	if m == 0 {
		assign = make([]int, n)
		for i := range assign {
			assign[i] = -1
		}
		return assign, 0, fmt.Errorf("ilp: empty columns")
	}
	// Pad to a square matrix with a large-but-finite cost so the classic
	// O(n^3) algorithm applies; padded cells mean "unassigned".
	size := n
	if m > size {
		size = m
	}
	solveStart := time.Now()
	defer func() { observeHungarian(solveStart, size) }()
	// big must dominate any feasible total without overflowing.
	big := 1.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if !math.IsInf(cost[i][j], 1) && math.Abs(cost[i][j]) > big {
				big = math.Abs(cost[i][j])
			}
		}
	}
	big = big*float64(size+1) + 1
	a := make([][]float64, size)
	for i := range a {
		a[i] = make([]float64, size)
		for j := range a[i] {
			switch {
			case i < n && j < m && !math.IsInf(cost[i][j], 1):
				a[i][j] = cost[i][j]
			default:
				a[i][j] = big
			}
		}
	}

	// Jonker-Volgenant-style shortest augmenting path Hungarian
	// (1-indexed potentials formulation).
	const inf = math.MaxFloat64
	u := make([]float64, size+1)
	v := make([]float64, size+1)
	p := make([]int, size+1) // p[j] = row matched to column j
	way := make([]int, size+1)
	minv := make([]float64, size+1)
	used := make([]bool, size+1)
	for i := 1; i <= size; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= size; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= size; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign = make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	total = 0
	for j := 1; j <= size; j++ {
		i := p[j] - 1
		if i < 0 || i >= n || j-1 >= m {
			continue
		}
		if math.IsInf(cost[i][j-1], 1) {
			// The algorithm matched through a padded/infeasible cell:
			// treat as unassigned.
			continue
		}
		assign[i] = j - 1
		total += cost[i][j-1]
	}
	// Feasibility: every column (if m <= n) or every row (if n <= m)
	// should be matched through a feasible cell, unless the instance
	// genuinely forbids it.
	matched := 0
	for _, j := range assign {
		if j >= 0 {
			matched++
		}
	}
	need := n
	if m < n {
		need = m
	}
	if matched < need {
		return assign, total, fmt.Errorf("%w: only %d of %d assignable", ErrInfeasible, matched, need)
	}
	return assign, total, nil
}

// Problem is a 0/1 integer program:
//
//	minimize    c.x
//	subject to  A[i].x <= B[i]  for every row i
//	            x[j] in {0, 1}
type Problem struct {
	C []float64   // objective coefficients
	A [][]float64 // constraint rows (each of length len(C))
	B []float64   // right-hand sides
}

// Validate reports structural errors.
func (p *Problem) Validate() error {
	if len(p.C) == 0 {
		return errors.New("ilp: empty objective")
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("ilp: %d constraint rows vs %d bounds", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != len(p.C) {
			return fmt.Errorf("ilp: constraint %d has %d coefficients, want %d", i, len(row), len(p.C))
		}
	}
	return nil
}

// Solution is the result of Solve01.
type Solution struct {
	X          []bool
	Objective  float64
	Nodes      int     // branch-and-bound nodes explored
	LowerBound float64 // certified root lower bound on the optimum
}

// Gap returns the certified optimality gap Objective - LowerBound. It
// is zero (up to float noise) for an exact solve and quantifies how far
// a budget-capped incumbent can be from optimal.
func (s Solution) Gap() float64 {
	g := s.Objective - s.LowerBound
	if g < 0 {
		return 0
	}
	return g
}

// Solve01 exactly solves the 0/1 program by depth-first branch and bound.
// The lower bound at each node adds every remaining variable with a
// negative cost; feasibility is pruned via optimistic per-constraint
// slack. maxNodes caps the search (0 means a million nodes); exceeding it
// returns the best incumbent found with an error.
func Solve01(p Problem, maxNodes int) (Solution, error) {
	return Solve01Bounded(p, maxNodes, nil)
}

// Solve01Bounded is Solve01 with an optional Lagrangian bounding hook:
// lambda (typically LagrangianBound(p).Lambda, one multiplier per
// constraint, all >= 0) adds a second pruning rule at every node — for
// any feasible completion x,
//
//	c.x >= obj + lambda.(A.x_fixed) - lambda.b + sum_{free j, rc_j<0} rc_j
//
// with rc_j = c_j + lambda.A_j the Lagrangian reduced costs (weak
// duality plus lambda.(A.x - b) <= 0). The hook never changes the
// result, only how many nodes the search visits; nil lambda is plain
// Solve01.
func Solve01Bounded(p Problem, maxNodes int, lambda []float64) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	if lambda != nil && len(lambda) != len(p.B) {
		return Solution{}, fmt.Errorf("ilp: %d multipliers vs %d constraints", len(lambda), len(p.B))
	}
	for i, l := range lambda {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return Solution{}, fmt.Errorf("ilp: multiplier %d is %v, want finite >= 0", i, l)
		}
	}
	if maxNodes <= 0 {
		maxNodes = 1_000_000
	}
	n := len(p.C)
	// minAdd[i][j]: the minimum possible additional usage of constraint i
	// from variables j..n-1 (choosing each only if its coefficient is
	// negative). Used for optimistic feasibility pruning.
	minAdd := make([][]float64, len(p.A))
	for i, row := range p.A {
		minAdd[i] = make([]float64, n+1)
		for j := n - 1; j >= 0; j-- {
			add := 0.0
			if row[j] < 0 {
				add = row[j]
			}
			minAdd[i][j] = minAdd[i][j+1] + add
		}
	}
	// minCost[j]: sum of negative costs from j on (objective lower bound).
	minCost := make([]float64, n+1)
	for j := n - 1; j >= 0; j-- {
		add := 0.0
		if p.C[j] < 0 {
			add = p.C[j]
		}
		minCost[j] = minCost[j+1] + add
	}
	// Lagrangian pruning scratch: lamA[j] = lambda.A_j, negRC[j] = the
	// sum of negative reduced costs from j on, lamB = lambda.b. lamUse
	// tracks lambda.(A.x_fixed) incrementally alongside usage.
	var lamA, negRC []float64
	var lamB float64
	if lambda != nil {
		lamA = make([]float64, n)
		for i, l := range lambda {
			lamB += l * p.B[i]
			for j, a := range p.A[i] {
				lamA[j] += l * a
			}
		}
		negRC = make([]float64, n+1)
		for j := n - 1; j >= 0; j-- {
			add := 0.0
			if rc := p.C[j] + lamA[j]; rc < 0 {
				add = rc
			}
			negRC[j] = negRC[j+1] + add
		}
	}
	rootBound := minCost[0]
	if lambda != nil && negRC[0]-lamB > rootBound {
		rootBound = negRC[0] - lamB
	}

	best := Solution{Objective: math.Inf(1)}
	x := make([]bool, n)
	usage := make([]float64, len(p.A))
	lamUse := 0.0
	nodes := 0
	var capped bool

	var dfs func(j int, obj float64)
	dfs = func(j int, obj float64) {
		if capped {
			return
		}
		nodes++
		if nodes > maxNodes {
			capped = true
			return
		}
		// Bound: even the best completion cannot beat the incumbent.
		if obj+minCost[j] >= best.Objective {
			return
		}
		if lambda != nil && obj+lamUse-lamB+negRC[j] >= best.Objective {
			return
		}
		// Optimistic feasibility: with the most helpful remaining
		// choices, can each constraint still be satisfied?
		for i := range p.A {
			if usage[i]+minAdd[i][j] > p.B[i]+1e-9 {
				return
			}
		}
		if j == n {
			// All constraints already verified satisfiable with nothing
			// left to add; check exactly.
			for i := range p.A {
				if usage[i] > p.B[i]+1e-9 {
					return
				}
			}
			best = Solution{X: append([]bool(nil), x...), Objective: obj}
			return
		}
		// Branch: try including j first when its cost helps.
		order := [2]bool{false, true}
		if p.C[j] < 0 {
			order = [2]bool{true, false}
		}
		for _, take := range order {
			x[j] = take
			if take {
				for i := range p.A {
					usage[i] += p.A[i][j]
				}
				if lambda != nil {
					lamUse += lamA[j]
				}
				dfs(j+1, obj+p.C[j])
				for i := range p.A {
					usage[i] -= p.A[i][j]
				}
				if lambda != nil {
					lamUse -= lamA[j]
				}
			} else {
				dfs(j+1, obj)
			}
		}
		x[j] = false
	}
	solveStart := time.Now()
	dfs(0, 0)
	best.Nodes = nodes
	best.LowerBound = rootBound
	observeSolve01(solveStart, nodes)
	if math.IsInf(best.Objective, 1) {
		if capped {
			return best, fmt.Errorf("ilp: node budget %d exhausted with no incumbent", maxNodes)
		}
		return best, ErrInfeasible
	}
	if !capped {
		// An uncapped search proves the incumbent optimal: the certified
		// gap is zero regardless of how loose the root bound was.
		best.LowerBound = best.Objective
	}
	if capped {
		return best, fmt.Errorf("ilp: node budget %d exhausted; solution may be suboptimal", maxNodes)
	}
	return best, nil
}

// LatencyModel estimates how long an IP-based dispatcher computes before
// its decisions take effect — the paper reports ~300 s per solve, growing
// with the number of requests. The model is Base + PerVariable*n, capped
// by Max.
type LatencyModel struct {
	Base        time.Duration
	PerVariable time.Duration
	Max         time.Duration
}

// PaperLatency returns the latency model matching Section V-C3: around
// 300 s per solve, varying with demand.
func PaperLatency() LatencyModel {
	return LatencyModel{
		Base:        240 * time.Second,
		PerVariable: 500 * time.Millisecond,
		Max:         600 * time.Second,
	}
}

// Latency returns the modeled solve time for an instance with n decision
// variables.
func (lm LatencyModel) Latency(n int) time.Duration {
	d := lm.Base + time.Duration(n)*lm.PerVariable
	if lm.Max > 0 && d > lm.Max {
		d = lm.Max
	}
	if d < 0 {
		d = 0
	}
	return d
}
