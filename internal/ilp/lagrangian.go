package ilp

import (
	"math"
)

// This file implements the Lagrangian relaxation of the Solve01 0/1
// program: dualizing every constraint A.x <= b with multipliers
// lambda >= 0 gives
//
//	L(lambda) = -lambda.b + sum_j min(0, c_j + lambda.A_j)
//
// because with the constraints priced into the objective each variable
// decouples — it is taken exactly when its reduced cost
// rc_j = c_j + lambda.A_j is negative. Weak duality makes every
// L(lambda) a certified lower bound on the optimum; LagrangianBound
// climbs it with projected subgradient ascent and Solve01Bounded uses
// the best multipliers to prune branch and bound.

// BoundResult is a certified Lagrangian lower bound.
type BoundResult struct {
	Bound  float64   // best L(lambda) found: optimum >= Bound for any feasible x
	Lambda []float64 // multipliers achieving Bound (one per constraint, >= 0)
	Iters  int       // subgradient iterations performed
}

// LagrangianBound computes a lower bound on p's optimal objective by
// subgradient ascent on the Lagrangian dual. maxIters caps the ascent
// (0 means 200 iterations); the ascent stops early when the relaxed
// solution is feasible and complementary (the bound is then tight).
// The result is a valid bound at every iteration count — tuning only
// affects tightness, never correctness.
func LagrangianBound(p Problem, maxIters int) (BoundResult, error) {
	if err := p.Validate(); err != nil {
		return BoundResult{}, err
	}
	if maxIters <= 0 {
		maxIters = 200
	}
	rows, n := len(p.A), len(p.C)
	lam := make([]float64, rows)
	g := make([]float64, rows) // subgradient A.x(lambda) - b
	res := BoundResult{Bound: math.Inf(-1), Lambda: make([]float64, rows)}

	// evalL computes L(lam) and the subgradient at the relaxed
	// minimizer x(lam)_j = [rc_j < 0].
	evalL := func() float64 {
		L := 0.0
		for i, l := range lam {
			L -= l * p.B[i]
			g[i] = -p.B[i]
		}
		for j := 0; j < n; j++ {
			rc := p.C[j]
			for i, l := range lam {
				if l != 0 {
					rc += l * p.A[i][j]
				}
			}
			if rc < 0 {
				L += rc
				for i := range g {
					g[i] += p.A[i][j]
				}
			}
		}
		return L
	}

	// Step scale: the objective's magnitude, so the first steps can move
	// multipliers across the interesting range; decays harmonically.
	t0 := 1.0
	for _, c := range p.C {
		if math.Abs(c) > t0 {
			t0 = math.Abs(c)
		}
	}

	for k := 0; k < maxIters; k++ {
		L := evalL()
		res.Iters = k + 1
		if L > res.Bound {
			res.Bound = L
			copy(res.Lambda, lam)
		}
		gnorm := 0.0
		ascendable := false
		for i, gi := range g {
			gnorm += gi * gi
			if gi > 0 || (gi < 0 && lam[i] > 0) {
				ascendable = true
			}
		}
		if gnorm == 0 || !ascendable {
			// x(lambda) is feasible and no projected ascent direction
			// remains: L cannot improve from here.
			break
		}
		step := t0 / (float64(k+1) * math.Sqrt(gnorm))
		for i := range lam {
			lam[i] += step * g[i]
			if lam[i] < 0 {
				lam[i] = 0
			}
		}
	}
	return res, nil
}
