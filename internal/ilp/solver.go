package ilp

import (
	"fmt"
	"strings"
)

// SolverKind selects the assignment solver implementation.
type SolverKind uint8

const (
	// SolverExact is the Jonker-Volgenant-style Hungarian solver — the
	// reference implementation, and the default everywhere.
	SolverExact SolverKind = iota
	// SolverAuction is the Bertsekas ε-scaling auction solver with
	// cross-window warm starts — exactly optimal on integer-valued
	// costs, and orders of magnitude cheaper on large instances.
	SolverAuction
)

// SolverNames documents the -assign-solver flag values.
const SolverNames = "exact|auction"

// String implements fmt.Stringer.
func (k SolverKind) String() string {
	switch k {
	case SolverExact:
		return "exact"
	case SolverAuction:
		return "auction"
	default:
		return fmt.Sprintf("SolverKind(%d)", uint8(k))
	}
}

// ParseSolver maps a flag value to a SolverKind. The empty string is
// the exact solver, keeping zero-valued configs on the reference path.
func ParseSolver(name string) (SolverKind, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "exact", "hungarian":
		return SolverExact, nil
	case "auction":
		return SolverAuction, nil
	default:
		return SolverExact, fmt.Errorf("ilp: unknown assignment solver %q (want %s)", name, SolverNames)
	}
}

// Assigner is a reusable assignment solver handle: it owns the scratch
// Workspace and, for the auction kind, the WarmState that successive
// windows share. A nil *Assigner is valid and solves with Hungarian —
// dispatchers hold a nil Assigner until a non-default solver is
// configured, so the reference path stays byte-identical.
//
// An Assigner is not safe for concurrent use; each dispatcher owns its
// own.
type Assigner struct {
	kind SolverKind
	ws   Workspace
	warm *WarmState
}

// NewAssigner builds a solver handle of the given kind.
func NewAssigner(kind SolverKind) *Assigner {
	a := &Assigner{kind: kind}
	if kind == SolverAuction {
		a.warm = NewWarmState()
	}
	return a
}

// Kind returns the configured solver (SolverExact for a nil Assigner).
func (a *Assigner) Kind() SolverKind {
	if a == nil {
		return SolverExact
	}
	return a.kind
}

// Solve solves one assignment instance. rowKeys and colKeys name the
// rows (teams) and columns (segments) for cross-window warm starting;
// the exact solver ignores them, and the auction solver accepts nil
// keys by solving cold. The returned slice is owned by the Assigner on
// the auction path and overwritten by the next Solve.
func (a *Assigner) Solve(cost [][]float64, rowKeys, colKeys []int64) ([]int, float64, error) {
	if a == nil || a.kind == SolverExact {
		return Hungarian(cost)
	}
	warm := a.warm
	if len(rowKeys) != len(cost) || (len(cost) > 0 && len(colKeys) != len(cost[0])) {
		warm, rowKeys, colKeys = nil, nil, nil
	}
	return auctionSolve(&a.ws, cost, warm, rowKeys, colKeys)
}

// Last returns statistics for the most recent auction solve (zero for
// the exact kind).
func (a *Assigner) Last() SolveStats {
	if a == nil {
		return SolveStats{}
	}
	return a.ws.stats
}

// Reset drops the warm-start state; the next solve runs cold.
func (a *Assigner) Reset() {
	if a == nil {
		return
	}
	a.warm.Reset()
}

// CaptureState snapshots the warm-start duals (empty for the exact
// kind) so crash-safe runs restore the same tie-breaking trajectory.
func (a *Assigner) CaptureState() ([]byte, error) {
	if a == nil || a.warm == nil {
		return (*WarmState)(nil).MarshalBinary()
	}
	return a.warm.MarshalBinary()
}

// RestoreState restores a CaptureState snapshot. Restoring an empty
// snapshot onto an auction Assigner clears its warm state.
func (a *Assigner) RestoreState(blob []byte) error {
	if a == nil {
		return nil
	}
	if a.warm == nil {
		a.warm = NewWarmState()
	}
	return a.warm.UnmarshalBinary(blob)
}
