package ilp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestHungarianKnownCases(t *testing.T) {
	tests := []struct {
		name      string
		cost      [][]float64
		wantTotal float64
	}{
		{
			name:      "identity optimal",
			cost:      [][]float64{{1, 10}, {10, 1}},
			wantTotal: 2,
		},
		{
			name:      "crossed optimal",
			cost:      [][]float64{{10, 1}, {1, 10}},
			wantTotal: 2,
		},
		{
			name: "classic 3x3",
			cost: [][]float64{
				{4, 1, 3},
				{2, 0, 5},
				{3, 2, 2},
			},
			wantTotal: 5, // 1 + 2 + 2
		},
		{
			name:      "single cell",
			cost:      [][]float64{{7}},
			wantTotal: 7,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			assign, total, err := Hungarian(tt.cost)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-tt.wantTotal) > 1e-9 {
				t.Errorf("total = %v, want %v (assign %v)", total, tt.wantTotal, assign)
			}
			// Assignment must be a matching.
			seen := map[int]bool{}
			for _, j := range assign {
				if j < 0 {
					continue
				}
				if seen[j] {
					t.Error("column assigned twice")
				}
				seen[j] = true
			}
		})
	}
}

func TestHungarianRectangular(t *testing.T) {
	// More rows than columns: one row stays unassigned.
	cost := [][]float64{
		{5},
		{1},
		{3},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 1 {
		t.Errorf("total = %v, want 1", total)
	}
	if assign[1] != 0 || assign[0] != -1 || assign[2] != -1 {
		t.Errorf("assign = %v", assign)
	}
	// More columns than rows: every row assigned.
	cost2 := [][]float64{{9, 2, 7}}
	assign2, total2, err := Hungarian(cost2)
	if err != nil {
		t.Fatal(err)
	}
	if total2 != 2 || assign2[0] != 1 {
		t.Errorf("assign = %v total = %v", assign2, total2)
	}
}

func TestHungarianInfeasibleCells(t *testing.T) {
	cost := [][]float64{
		{Infeasible, 3},
		{2, Infeasible},
	}
	assign, total, err := Hungarian(cost)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || assign[1] != 0 || total != 5 {
		t.Errorf("assign = %v, total = %v", assign, total)
	}
	// Fully infeasible row.
	bad := [][]float64{
		{Infeasible, Infeasible},
		{1, 2},
	}
	_, _, err = Hungarian(bad)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestHungarianInputValidation(t *testing.T) {
	if _, _, err := Hungarian([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix should error")
	}
	if assign, total, err := Hungarian(nil); err != nil || assign != nil || total != 0 {
		t.Error("empty matrix should be a no-op")
	}
	if _, _, err := Hungarian([][]float64{{}}); err == nil {
		t.Error("zero columns should error")
	}
}

// bruteAssign finds the optimal assignment by enumeration (small n).
func bruteAssign(cost [][]float64) float64 {
	n := len(cost)
	m := len(cost[0])
	cols := make([]int, m)
	for j := range cols {
		cols[j] = j
	}
	best := math.Inf(1)
	var perm func(rows []int, used []bool, cur float64, count int)
	need := n
	if m < n {
		need = m
	}
	perm = func(rows []int, used []bool, cur float64, count int) {
		if count == need {
			if cur < best {
				best = cur
			}
			return
		}
		i := rows[count]
		for j := 0; j < m; j++ {
			if used[j] || math.IsInf(cost[i][j], 1) {
				continue
			}
			used[j] = true
			perm(rows, used, cur+cost[i][j], count+1)
			used[j] = false
		}
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	perm(rows, make([]bool, m), 0, 0)
	return best
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		if n > m {
			n, m = m, n // keep brute force cheap but cover both shapes via transpose below
		}
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) / 10
			}
		}
		_, total, err := Hungarian(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := bruteAssign(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: hungarian %v != brute %v (cost %v)", trial, total, want, cost)
		}
	}
}

func TestSolve01Knapsack(t *testing.T) {
	// Maximize 6x0 + 10x1 + 12x2 s.t. weights 1,2,3 <= 5 (minimize the
	// negation).
	p := Problem{
		C: []float64{-6, -10, -12},
		A: [][]float64{{1, 2, 3}},
		B: []float64{5},
	}
	sol, err := Solve01(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective+22) > 1e-9 { // x1 + x2
		t.Errorf("objective = %v, want -22", sol.Objective)
	}
	if sol.X[0] || !sol.X[1] || !sol.X[2] {
		t.Errorf("X = %v", sol.X)
	}
}

func TestSolve01Infeasible(t *testing.T) {
	p := Problem{
		C: []float64{-1, -1},
		A: [][]float64{
			{1, 0}, {-1, 0}, // x0 <= -1 and -x0 <= -... wait: force x0 <= -0.5 impossible
		},
		B: []float64{-0.5, 100},
	}
	_, err := Solve01(p, 0)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolve01TrivialFeasible(t *testing.T) {
	// All costs positive and no binding constraints: empty set optimal.
	p := Problem{C: []float64{3, 5}, A: nil, B: nil}
	sol, err := Solve01(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 || sol.X[0] || sol.X[1] {
		t.Errorf("sol = %+v", sol)
	}
}

func TestSolve01Validation(t *testing.T) {
	if _, err := Solve01(Problem{}, 0); err == nil {
		t.Error("empty objective should error")
	}
	if _, err := Solve01(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}, 0); err == nil {
		t.Error("mis-sized constraint should error")
	}
	if _, err := Solve01(Problem{C: []float64{1}, A: [][]float64{{1}}, B: nil}, 0); err == nil {
		t.Error("A/B mismatch should error")
	}
}

// TestSolve01MatchesHungarian frames a small assignment problem as a 0/1
// ILP and cross-checks both solvers.
func TestSolve01MatchesHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		n := 3
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 20)
			}
		}
		// Variables x[i*n+j]; constraints: each row exactly one (<=1 and
		// >=1 via negation), each column <= 1. To keep the ILP in <= form
		// while forcing assignment, minimize cost - M*sum(x) with M large:
		// picking n variables is then always better.
		const M = 1000
		p := Problem{C: make([]float64, n*n)}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.C[i*n+j] = cost[i][j] - M
			}
		}
		for i := 0; i < n; i++ { // row sums <= 1
			row := make([]float64, n*n)
			for j := 0; j < n; j++ {
				row[i*n+j] = 1
			}
			p.A = append(p.A, row)
			p.B = append(p.B, 1)
		}
		for j := 0; j < n; j++ { // column sums <= 1
			col := make([]float64, n*n)
			for i := 0; i < n; i++ {
				col[i*n+j] = 1
			}
			p.A = append(p.A, col)
			p.B = append(p.B, 1)
		}
		sol, err := Solve01(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		ilpTotal := sol.Objective + float64(n)*M
		_, hTotal, err := Hungarian(cost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ilpTotal-hTotal) > 1e-6 {
			t.Fatalf("trial %d: ILP %v != Hungarian %v", trial, ilpTotal, hTotal)
		}
	}
}

func TestSolve01NodeBudget(t *testing.T) {
	// A problem big enough to exceed a tiny node budget.
	n := 20
	p := Problem{C: make([]float64, n)}
	for i := range p.C {
		p.C[i] = -1 - float64(i%3)
	}
	row := make([]float64, n)
	for i := range row {
		row[i] = 1
	}
	p.A = [][]float64{row}
	p.B = []float64{float64(n / 2)}
	_, err := Solve01(p, 10)
	if err == nil {
		t.Error("tiny node budget should report exhaustion")
	}
}

func TestLatencyModel(t *testing.T) {
	lm := LatencyModel{Base: 10 * time.Second, PerVariable: time.Second, Max: 30 * time.Second}
	if got := lm.Latency(5); got != 15*time.Second {
		t.Errorf("Latency(5) = %v", got)
	}
	if got := lm.Latency(100); got != 30*time.Second {
		t.Errorf("capped Latency = %v", got)
	}
	paper := PaperLatency()
	if got := paper.Latency(100); got < 200*time.Second || got > 600*time.Second {
		t.Errorf("paper latency for 100 vars = %v, want minutes-scale", got)
	}
}

func BenchmarkHungarian50(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	n := 50
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Hungarian(cost); err != nil {
			b.Fatal(err)
		}
	}
}
