package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// charlotte downtown, used as a realistic anchor in tests.
var charlotte = Point{Lat: 35.2271, Lon: -80.8431}

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name    string
		a, b    Point
		want    float64 // meters
		tolFrac float64
	}{
		{
			name: "zero distance",
			a:    charlotte, b: charlotte,
			want: 0, tolFrac: 0,
		},
		{
			name: "one degree latitude",
			a:    Point{35, -80}, b: Point{36, -80},
			want: 111195, tolFrac: 0.001,
		},
		{
			name: "charlotte to raleigh",
			a:    charlotte, b: Point{35.7796, -78.6382},
			want: 209000, tolFrac: 0.01,
		},
		{
			name: "equator one degree longitude",
			a:    Point{0, 0}, b: Point{0, 1},
			want: 111195, tolFrac: 0.001,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Haversine(tt.a, tt.b)
			if math.Abs(got-tt.want) > tt.want*tt.tolFrac+1e-9 {
				t.Errorf("Haversine(%v, %v) = %v, want %v ± %.1f%%",
					tt.a, tt.b, got, tt.want, tt.tolFrac*100)
			}
		})
	}
}

func TestHaversineSymmetric(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := Point{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFastDistanceMatchesHaversineAtCityScale(t *testing.T) {
	// Points up to ~20 km apart near Charlotte.
	offsets := []struct{ dLat, dLon float64 }{
		{0.01, 0.01}, {0.05, -0.03}, {-0.1, 0.1}, {0.15, 0.0}, {0.0, 0.18},
	}
	for _, o := range offsets {
		b := Point{charlotte.Lat + o.dLat, charlotte.Lon + o.dLon}
		h := Haversine(charlotte, b)
		f := FastDistance(charlotte, b)
		if h == 0 {
			continue
		}
		if rel := math.Abs(h-f) / h; rel > 0.01 {
			t.Errorf("FastDistance off by %.2f%% for offset %+v (h=%v f=%v)", rel*100, o, h, f)
		}
	}
}

func TestBearingCardinalDirections(t *testing.T) {
	tests := []struct {
		name string
		b    Point
		want float64
	}{
		{"north", Point{charlotte.Lat + 0.1, charlotte.Lon}, 0},
		{"east", Point{charlotte.Lat, charlotte.Lon + 0.1}, 90},
		{"south", Point{charlotte.Lat - 0.1, charlotte.Lon}, 180},
		{"west", Point{charlotte.Lat, charlotte.Lon - 0.1}, 270},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Bearing(charlotte, tt.b)
			diff := math.Abs(got - tt.want)
			if diff > 180 {
				diff = 360 - diff
			}
			if diff > 0.2 {
				t.Errorf("Bearing = %v, want ~%v", got, tt.want)
			}
		})
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(bearing, dist float64) bool {
		bearing = math.Mod(math.Abs(bearing), 360)
		dist = math.Mod(math.Abs(dist), 50000) // up to 50 km
		dst := Destination(charlotte, bearing, dist)
		got := Haversine(charlotte, dst)
		return math.Abs(got-dist) < 1.0 // within a meter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterpolate(t *testing.T) {
	a := Point{35, -81}
	b := Point{36, -80}
	if got := Interpolate(a, b, 0); got != a {
		t.Errorf("frac=0 => %v, want %v", got, a)
	}
	if got := Interpolate(a, b, 1); got != b {
		t.Errorf("frac=1 => %v, want %v", got, b)
	}
	mid := Interpolate(a, b, 0.5)
	if math.Abs(mid.Lat-35.5) > 1e-9 || math.Abs(mid.Lon+80.5) > 1e-9 {
		t.Errorf("frac=0.5 => %v, want (35.5, -80.5)", mid)
	}
	if got := Interpolate(a, b, -1); got != a {
		t.Errorf("frac<0 should clamp to a, got %v", got)
	}
	if got := Interpolate(a, b, 2); got != b {
		t.Errorf("frac>1 should clamp to b, got %v", got)
	}
}

func TestBBox(t *testing.T) {
	pts := []Point{{35.1, -81.0}, {35.9, -80.2}, {35.5, -80.7}}
	b := NewBBox(pts...)
	want := BBox{MinLat: 35.1, MinLon: -81.0, MaxLat: 35.9, MaxLon: -80.2}
	if b != want {
		t.Fatalf("NewBBox = %+v, want %+v", b, want)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(Point{34.0, -80.5}) {
		t.Error("box should not contain point south of it")
	}
	c := b.Center()
	if math.Abs(c.Lat-35.5) > 1e-9 || math.Abs(c.Lon+80.6) > 1e-9 {
		t.Errorf("Center = %v", c)
	}
}

func TestBBoxPad(t *testing.T) {
	b := NewBBox(charlotte)
	padded := b.Pad(1000)
	// Corners should be ~sqrt(2) km from the center; sides 1 km away.
	north := Point{padded.MaxLat, charlotte.Lon}
	if d := Haversine(charlotte, north); math.Abs(d-1000) > 5 {
		t.Errorf("north pad distance = %v, want ~1000", d)
	}
	east := Point{charlotte.Lat, padded.MaxLon}
	if d := Haversine(charlotte, east); math.Abs(d-1000) > 5 {
		t.Errorf("east pad distance = %v, want ~1000", d)
	}
}

func TestBBoxExtentMeters(t *testing.T) {
	b := BBox{MinLat: 35.0, MaxLat: 36.0, MinLon: -81.0, MaxLon: -80.0}
	if h := b.HeightMeters(); math.Abs(h-111195) > 200 {
		t.Errorf("HeightMeters = %v, want ~111195", h)
	}
	w := b.WidthMeters()
	wantW := 111195 * math.Cos(35.5*math.Pi/180)
	if math.Abs(w-wantW) > 500 {
		t.Errorf("WidthMeters = %v, want ~%v", w, wantW)
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(charlotte)
	f := func(dLat, dLon float64) bool {
		p := Point{
			Lat: charlotte.Lat + math.Mod(dLat, 0.3),
			Lon: charlotte.Lon + math.Mod(dLon, 0.3),
		}
		back := pr.ToPoint(pr.ToXY(p))
		return math.Abs(back.Lat-p.Lat) < 1e-9 && math.Abs(back.Lon-p.Lon) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjectionDistancePreserved(t *testing.T) {
	pr := NewProjection(charlotte)
	a := Point{35.25, -80.90}
	b := Point{35.30, -80.80}
	planar := pr.ToXY(a).Dist(pr.ToXY(b))
	sphere := Haversine(a, b)
	if rel := math.Abs(planar-sphere) / sphere; rel > 0.005 {
		t.Errorf("projected distance off by %.3f%%", rel*100)
	}
}

func TestPointValid(t *testing.T) {
	tests := []struct {
		p    Point
		want bool
	}{
		{charlotte, true},
		{Point{91, 0}, false},
		{Point{-91, 0}, false},
		{Point{0, 181}, false},
		{Point{0, -181}, false},
		{Point{math.NaN(), 0}, false},
		{Point{0, math.NaN()}, false},
		{Point{90, 180}, true},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func BenchmarkHaversine(b *testing.B) {
	p2 := Point{35.30, -80.80}
	for i := 0; i < b.N; i++ {
		_ = Haversine(charlotte, p2)
	}
}

func BenchmarkFastDistance(b *testing.B) {
	p2 := Point{35.30, -80.80}
	for i := 0; i < b.N; i++ {
		_ = FastDistance(charlotte, p2)
	}
}
