// Package geo provides geographic primitives used throughout MobiRescue:
// latitude/longitude points, great-circle and fast planar distances,
// bounding boxes, bearings, and a local equirectangular projection for
// converting between geographic and metric coordinates.
//
// All distances are in meters, all angles in degrees unless stated
// otherwise.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by all spherical
// computations in this package.
const EarthRadiusMeters = 6371000.0

// Point is a geographic position in degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point is a plausible geographic coordinate.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 &&
		p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// Haversine returns the great-circle distance in meters between a and b.
func Haversine(a, b Point) float64 {
	lat1, lon1 := deg2rad(a.Lat), deg2rad(a.Lon)
	lat2, lon2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLat, dLon := lat2-lat1, lon2-lon1
	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// FastDistance returns an equirectangular approximation of the distance
// in meters between a and b. It is accurate to well under 1% for
// city-scale separations and is several times faster than Haversine.
func FastDistance(a, b Point) float64 {
	x := deg2rad(b.Lon-a.Lon) * math.Cos(deg2rad((a.Lat+b.Lat)/2))
	y := deg2rad(b.Lat - a.Lat)
	return EarthRadiusMeters * math.Sqrt(x*x+y*y)
}

// Bearing returns the initial great-circle bearing in degrees (0..360,
// clockwise from north) when traveling from a to b.
func Bearing(a, b Point) float64 {
	lat1, lat2 := deg2rad(a.Lat), deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	br := rad2deg(math.Atan2(y, x))
	if br < 0 {
		br += 360
	}
	return br
}

// Destination returns the point reached by traveling dist meters from p
// along the given bearing in degrees.
func Destination(p Point, bearingDeg, dist float64) Point {
	lat1 := deg2rad(p.Lat)
	lon1 := deg2rad(p.Lon)
	br := deg2rad(bearingDeg)
	ang := dist / EarthRadiusMeters
	lat2 := math.Asin(math.Sin(lat1)*math.Cos(ang) + math.Cos(lat1)*math.Sin(ang)*math.Cos(br))
	lon2 := lon1 + math.Atan2(
		math.Sin(br)*math.Sin(ang)*math.Cos(lat1),
		math.Cos(ang)-math.Sin(lat1)*math.Sin(lat2),
	)
	return Point{Lat: rad2deg(lat2), Lon: normalizeLon(rad2deg(lon2))}
}

func normalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}

// Interpolate returns the point a fraction frac (0..1) of the way from a
// to b along the straight chord in projected space. It is intended for
// city-scale segments where the chord and the great circle coincide for
// practical purposes.
func Interpolate(a, b Point, frac float64) Point {
	if frac <= 0 {
		return a
	}
	if frac >= 1 {
		return b
	}
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*frac,
		Lon: a.Lon + (b.Lon-a.Lon)*frac,
	}
}

// BBox is a geographic bounding box.
type BBox struct {
	MinLat float64 `json:"min_lat"`
	MinLon float64 `json:"min_lon"`
	MaxLat float64 `json:"max_lat"`
	MaxLon float64 `json:"max_lon"`
}

// NewBBox returns the smallest box containing all pts. The zero BBox is
// returned when pts is empty.
func NewBBox(pts ...Point) BBox {
	if len(pts) == 0 {
		return BBox{}
	}
	b := BBox{
		MinLat: pts[0].Lat, MaxLat: pts[0].Lat,
		MinLon: pts[0].Lon, MaxLon: pts[0].Lon,
	}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns a copy of b grown to include p.
func (b BBox) Extend(p Point) BBox {
	if p.Lat < b.MinLat {
		b.MinLat = p.Lat
	}
	if p.Lat > b.MaxLat {
		b.MaxLat = p.Lat
	}
	if p.Lon < b.MinLon {
		b.MinLon = p.Lon
	}
	if p.Lon > b.MaxLon {
		b.MaxLon = p.Lon
	}
	return b
}

// Contains reports whether p lies inside the box (inclusive).
func (b BBox) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the box center.
func (b BBox) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

// Pad returns a copy of b expanded by meters on every side.
func (b BBox) Pad(meters float64) BBox {
	dLat := rad2deg(meters / EarthRadiusMeters)
	dLon := rad2deg(meters / (EarthRadiusMeters * math.Cos(deg2rad(b.Center().Lat))))
	return BBox{
		MinLat: b.MinLat - dLat, MaxLat: b.MaxLat + dLat,
		MinLon: b.MinLon - dLon, MaxLon: b.MaxLon + dLon,
	}
}

// WidthMeters returns the east-west extent of the box at its central
// latitude.
func (b BBox) WidthMeters() float64 {
	midLat := (b.MinLat + b.MaxLat) / 2
	return Haversine(Point{midLat, b.MinLon}, Point{midLat, b.MaxLon})
}

// HeightMeters returns the north-south extent of the box.
func (b BBox) HeightMeters() float64 {
	return Haversine(Point{b.MinLat, b.MinLon}, Point{b.MaxLat, b.MinLon})
}

// XY is a planar metric coordinate produced by a Projection.
type XY struct {
	X float64 // meters east of the projection origin
	Y float64 // meters north of the projection origin
}

// Dist returns the Euclidean distance in meters to o.
func (p XY) Dist(o XY) float64 {
	dx, dy := p.X-o.X, p.Y-o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Projection converts between geographic and local planar coordinates
// using an equirectangular projection centered on Origin. It is accurate
// for city-scale extents (tens of kilometers).
type Projection struct {
	Origin Point
	cosLat float64
}

// NewProjection returns a Projection centered at origin.
func NewProjection(origin Point) *Projection {
	return &Projection{Origin: origin, cosLat: math.Cos(deg2rad(origin.Lat))}
}

// ToXY projects p into local planar meters.
func (pr *Projection) ToXY(p Point) XY {
	return XY{
		X: deg2rad(p.Lon-pr.Origin.Lon) * pr.cosLat * EarthRadiusMeters,
		Y: deg2rad(p.Lat-pr.Origin.Lat) * EarthRadiusMeters,
	}
}

// ToPoint inverts ToXY.
func (pr *Projection) ToPoint(xy XY) Point {
	return Point{
		Lat: pr.Origin.Lat + rad2deg(xy.Y/EarthRadiusMeters),
		Lon: pr.Origin.Lon + rad2deg(xy.X/(EarthRadiusMeters*pr.cosLat)),
	}
}
