// Package benchgate compares a freshly generated benchmark artifact
// (BENCH_routing.json / BENCH_predict.json, written by cmd/benchroute
// and cmd/benchpredict) against a checked-in baseline and reports every
// field that regressed beyond a tolerance band. It is the repo's
// automated perf-regression gate: `analyze bench-check` is a thin CLI
// over Check, and CI fails when any violation survives.
//
// The comparison is structural, not schema-bound: both documents are
// decoded as generic JSON and walked in parallel, so new benchmarks and
// new fields never break the gate — rules attach to leaf key names:
//
//   - ns_per_op, *_ns_per_op, *_seconds — lower is better; the fresh
//     value may exceed the baseline by at most the tolerance fraction.
//     Skipped in Portable mode (absolute wall-clock is a property of
//     the machine that wrote the baseline, meaningless on other
//     hardware).
//   - speedup, *_speedup — higher is better; the fresh value may fall
//     short of the baseline by at most the tolerance fraction. Checked
//     in Portable mode too: ratios between two measurements on the
//     same machine transfer across machines.
//   - allocs_per_op, bytes_per_op — strict: the fresh value must not
//     exceed the baseline at all. Allocation counts are a property of
//     the code, not the hardware, so these hold in every mode.
//   - boolean leaves (e.g. results_identical) — must not regress from
//     true to false.
//   - iterations, generated_at, go_version, gomaxprocs, smoke, scale,
//     seed, workers, train_episodes, warmup_seconds and every other
//     leaf — informational; never compared.
//
// Array elements are matched by their "name" (or "method") key, so
// reordering benchmarks is harmless; a baseline entry missing from the
// fresh artifact is itself a violation (a benchmark silently vanishing
// is a regression of coverage, not of speed).
package benchgate

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// DefaultTolerance is the fractional tolerance band applied to timing
// and speedup fields when the caller does not choose one.
const DefaultTolerance = 0.05

// Options configures a Check run.
type Options struct {
	// Tolerance is the fractional band for timing and speedup fields
	// (0.05 = 5%). Zero means DefaultTolerance; negative is an error.
	Tolerance float64
	// Portable skips absolute wall-clock comparisons (ns_per_op,
	// *_seconds), keeping only machine-independent checks: allocation
	// counts, speedup ratios, and boolean invariants. Use it when the
	// fresh artifact was generated on different hardware than the
	// baseline — which is every CI run.
	Portable bool
}

// Violation is one field that regressed.
type Violation struct {
	Path  string  // dotted path into the document, e.g. "routing[tree_cached].ns_per_op"
	Base  float64 // baseline value (0/1 for bools)
	Fresh float64 // fresh value (0/1 for bools)
	Why   string  // human-readable rule that fired
}

// String formats the violation for terminal output.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (base %v, fresh %v)", v.Path, v.Why, v.Base, v.Fresh)
}

// ignored are leaf keys that are bookkeeping, not perf claims.
var ignored = map[string]bool{
	"generated_at":   true,
	"go_version":     true,
	"gomaxprocs":     true,
	"iterations":     true,
	"smoke":          true,
	"scale":          true,
	"seed":           true,
	"workers":        true,
	"train_episodes": true,
	"warmup_seconds": true, // setup cost, not a benchmarked path
}

// Check decodes both artifacts and returns every rule violation, sorted
// by path. An empty slice means the fresh artifact passes the gate.
func Check(base, fresh []byte, opts Options) ([]Violation, error) {
	if opts.Tolerance < 0 {
		return nil, fmt.Errorf("benchgate: negative tolerance %v", opts.Tolerance)
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = DefaultTolerance
	}
	var b, f any
	if err := json.Unmarshal(base, &b); err != nil {
		return nil, fmt.Errorf("benchgate: baseline: %w", err)
	}
	if err := json.Unmarshal(fresh, &f); err != nil {
		return nil, fmt.Errorf("benchgate: fresh artifact: %w", err)
	}
	var out []Violation
	walk(&out, "", "", b, f, opts)
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walk compares the baseline node against the fresh node at path; key
// is the leaf key the node was reached through ("" at the root).
func walk(out *[]Violation, path, key string, base, fresh any, opts Options) {
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			*out = append(*out, Violation{Path: path, Why: "object missing from fresh artifact"})
			return
		}
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if ignored[k] {
				continue
			}
			child := k
			if path != "" {
				child = path + "." + k
			}
			fv, present := f[k]
			if !present {
				if wouldCompare(k, b[k], opts) {
					*out = append(*out, Violation{Path: child, Base: num(b[k]), Why: "field missing from fresh artifact"})
				}
				continue
			}
			walk(out, child, k, b[k], fv, opts)
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok {
			*out = append(*out, Violation{Path: path, Why: "array missing from fresh artifact"})
			return
		}
		for _, be := range b {
			bm, ok := be.(map[string]any)
			if !ok {
				continue // arrays of scalars carry no perf claims
			}
			id := entryID(bm)
			fe := findEntry(f, id)
			child := fmt.Sprintf("%s[%s]", path, id)
			if fe == nil {
				*out = append(*out, Violation{Path: child, Why: "benchmark entry missing from fresh artifact"})
				continue
			}
			walk(out, child, key, bm, fe, opts)
		}
	case bool:
		fb, ok := fresh.(bool)
		if !ok {
			*out = append(*out, Violation{Path: path, Base: num(b), Why: "boolean field missing or changed type"})
			return
		}
		if b && !fb {
			*out = append(*out, Violation{Path: path, Base: 1, Fresh: 0, Why: "invariant regressed from true to false"})
		}
	case float64:
		fv, ok := fresh.(float64)
		if !ok {
			if wouldCompare(key, b, opts) {
				*out = append(*out, Violation{Path: path, Base: b, Why: "numeric field missing or changed type"})
			}
			return
		}
		checkNumber(out, path, key, b, fv, opts)
	}
}

// wouldCompare reports whether a missing field of this key/value would
// have been compared at all (so purely informational omissions don't
// fail the gate).
func wouldCompare(key string, base any, opts Options) bool {
	switch base.(type) {
	case bool:
		return true
	case float64:
		return rule(key, opts) != ruleNone
	case map[string]any, []any:
		return true
	}
	return false
}

type numRule int

const (
	ruleNone numRule = iota
	ruleLowerBetter
	ruleHigherBetter
	ruleStrictNoIncrease
)

// rule maps a leaf key to its comparison rule under the given options.
func rule(key string, opts Options) numRule {
	switch {
	case key == "allocs_per_op" || key == "bytes_per_op":
		return ruleStrictNoIncrease
	case key == "speedup" || strings.HasSuffix(key, "_speedup"):
		return ruleHigherBetter
	case opts.Portable:
		return ruleNone // absolute timings don't transfer across machines
	case key == "ns_per_op" || strings.HasSuffix(key, "_ns_per_op") || strings.HasSuffix(key, "_seconds"):
		return ruleLowerBetter
	}
	return ruleNone
}

func checkNumber(out *[]Violation, path, key string, base, fresh float64, opts Options) {
	switch rule(key, opts) {
	case ruleLowerBetter:
		if fresh > base*(1+opts.Tolerance) {
			*out = append(*out, Violation{Path: path, Base: base, Fresh: fresh,
				Why: fmt.Sprintf("slower than baseline by more than %.0f%%", opts.Tolerance*100)})
		}
	case ruleHigherBetter:
		if fresh < base*(1-opts.Tolerance) {
			*out = append(*out, Violation{Path: path, Base: base, Fresh: fresh,
				Why: fmt.Sprintf("speedup shrank by more than %.0f%%", opts.Tolerance*100)})
		}
	case ruleStrictNoIncrease:
		if fresh > base {
			*out = append(*out, Violation{Path: path, Base: base, Fresh: fresh,
				Why: key + " increased (strict: allocations are a property of the code, not the machine)"})
		}
	}
}

// entryID names an array element for matching and error paths.
func entryID(m map[string]any) string {
	if s, ok := m["name"].(string); ok {
		return s
	}
	if s, ok := m["method"].(string); ok {
		return s
	}
	return "?"
}

// findEntry locates the fresh array element with the same name/method.
func findEntry(arr []any, id string) map[string]any {
	for _, e := range arr {
		if m, ok := e.(map[string]any); ok && entryID(m) == id {
			return m
		}
	}
	return nil
}

// num coerces a JSON leaf to a float for Violation reporting.
func num(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
	}
	return 0
}
