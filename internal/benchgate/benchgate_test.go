package benchgate

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// doc builds a small artifact in the BENCH_routing.json shape.
func doc(ns, allocs float64, speedup float64, identical bool) string {
	return `{
  "generated_at": "2026-01-01T00:00:00Z",
  "go_version": "go1.24.0",
  "gomaxprocs": 1,
  "routing": [
    {"name": "tree_cached", "iterations": 1000, "ns_per_op": ` + f(ns) + `, "allocs_per_op": ` + f(allocs) + `, "bytes_per_op": 0}
  ],
  "decide": [
    {"method": "mobirescue", "cached_ns_per_op": 100, "uncached_ns_per_op": 200, "speedup": ` + f(speedup) + `}
  ],
  "comparison": {"scale": "small", "seed": 1, "serial_seconds": 1.0, "parallel_seconds": 0.5, "parallel_speedup": 2.0, "results_identical": ` + b(identical) + `}
}`
}

func b(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

func TestIdenticalArtifactsPass(t *testing.T) {
	d := []byte(doc(100, 0, 1.5, true))
	vs, err := Check(d, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("identical artifacts produced violations: %v", vs)
	}
}

func TestCheckedInBaselinesSelfPass(t *testing.T) {
	for _, name := range []string{"BENCH_routing.json", "BENCH_predict.json"} {
		data, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Fatalf("reading checked-in baseline: %v", err)
		}
		vs, err := Check(data, data, Options{Portable: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(vs) != 0 {
			t.Errorf("%s vs itself: violations %v", name, vs)
		}
	}
}

func TestSlowerNsPerOpFails(t *testing.T) {
	base := []byte(doc(100, 0, 1.5, true))
	fresh := []byte(doc(120, 0, 1.5, true)) // +20% > 5% band
	vs, err := Check(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Path, "tree_cached") {
		t.Fatalf("want one tree_cached violation, got %v", vs)
	}
}

func TestWithinTolerancePasses(t *testing.T) {
	base := []byte(doc(100, 0, 1.5, true))
	fresh := []byte(doc(104, 0, 1.5, true)) // +4% < 5% band
	vs, err := Check(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("4%% slowdown inside 5%% band flagged: %v", vs)
	}
}

func TestPortableSkipsTimings(t *testing.T) {
	base := []byte(doc(100, 0, 1.5, true))
	fresh := []byte(doc(5000, 0, 1.5, true)) // 50x slower machine
	vs, err := Check(base, fresh, Options{Portable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("portable mode compared wall-clock: %v", vs)
	}
}

func TestAllocRegressionStrictEvenPortable(t *testing.T) {
	base := []byte(doc(100, 0, 1.5, true))
	fresh := []byte(doc(100, 1, 1.5, true)) // 0 -> 1 alloc/op
	for _, portable := range []bool{false, true} {
		vs, err := Check(base, fresh, Options{Portable: portable})
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 || !strings.Contains(vs[0].Why, "allocs_per_op increased") {
			t.Fatalf("portable=%v: want strict alloc violation, got %v", portable, vs)
		}
	}
}

func TestSpeedupShrinkFails(t *testing.T) {
	base := []byte(doc(100, 0, 2.0, true))
	fresh := []byte(doc(100, 0, 1.0, true))
	vs, err := Check(base, fresh, Options{Portable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Why, "speedup shrank") {
		t.Fatalf("want speedup violation, got %v", vs)
	}
}

func TestBoolRegressionFails(t *testing.T) {
	base := []byte(doc(100, 0, 1.5, true))
	fresh := []byte(doc(100, 0, 1.5, false))
	vs, err := Check(base, fresh, Options{Portable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Path, "results_identical") {
		t.Fatalf("want results_identical violation, got %v", vs)
	}
}

func TestMissingBenchmarkEntryFails(t *testing.T) {
	base := []byte(doc(100, 0, 1.5, true))
	fresh := []byte(`{"routing": [], "decide": [{"method": "mobirescue", "cached_ns_per_op": 100, "uncached_ns_per_op": 200, "speedup": 1.5}], "comparison": {"results_identical": true, "parallel_speedup": 2.0, "serial_seconds": 1.0, "parallel_seconds": 0.5}}`)
	vs, err := Check(base, fresh, Options{Portable: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !strings.Contains(vs[0].Why, "entry missing") {
		t.Fatalf("want missing-entry violation, got %v", vs)
	}
}

func TestReorderedAndExtraEntriesPass(t *testing.T) {
	base := []byte(`{"micro": [{"name": "a", "allocs_per_op": 0}, {"name": "b", "allocs_per_op": 1}]}`)
	fresh := []byte(`{"micro": [{"name": "c", "allocs_per_op": 99}, {"name": "b", "allocs_per_op": 1}, {"name": "a", "allocs_per_op": 0}]}`)
	vs, err := Check(base, fresh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("reordered/extra entries flagged: %v", vs)
	}
}

func TestNegativeToleranceRejected(t *testing.T) {
	if _, err := Check([]byte(`{}`), []byte(`{}`), Options{Tolerance: -1}); err == nil {
		t.Fatal("negative tolerance accepted")
	}
}

func TestMalformedJSONRejected(t *testing.T) {
	if _, err := Check([]byte(`{`), []byte(`{}`), Options{}); err == nil {
		t.Fatal("malformed baseline accepted")
	}
	if _, err := Check([]byte(`{}`), []byte(`nope`), Options{}); err == nil {
		t.Fatal("malformed fresh artifact accepted")
	}
}
