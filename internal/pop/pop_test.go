package pop

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"mobirescue/internal/geo"
)

// naiveTrack mirrors the seed pipeline's per-person track: a slice of
// (time, pos) with the last-at-or-before lookup.
type naiveTrack struct {
	times []time.Time
	pos   []geo.Point
}

func (tr *naiveTrack) posAt(t time.Time) geo.Point {
	idx := sort.Search(len(tr.times), func(i int) bool { return tr.times[i].After(t) }) - 1
	if idx < 0 {
		idx = 0
	}
	return tr.pos[idx]
}

func buildRandom(t *testing.T, seed int64, people int) (*Store, map[int]*naiveTrack) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	ref := make(map[int]*naiveTrack)
	base := time.Date(2018, 9, 10, 0, 0, 0, 0, time.UTC)
	for id := 0; id < people; id++ {
		n := 1 + rng.Intn(20)
		tr := &naiveTrack{}
		at := base.Add(time.Duration(rng.Intn(3600)) * time.Second)
		for k := 0; k < n; k++ {
			p := geo.Point{Lat: 35 + rng.Float64(), Lon: -81 + rng.Float64()}
			b.Add(id, at, p)
			tr.times = append(tr.times, at)
			tr.pos = append(tr.pos, p)
			at = at.Add(time.Duration(1+rng.Intn(7200)) * time.Second)
		}
		ref[id] = tr
	}
	s, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s, ref
}

// TestStoreMatchesNaiveTracks pins the CSR lookup to the seed
// pipeline's per-track posAt semantics: last sample at or before t,
// clamped to the first sample, with exact boundary behavior at sample
// instants.
func TestStoreMatchesNaiveTracks(t *testing.T) {
	s, ref := buildRandom(t, 7, 200)
	if !s.Dense() {
		t.Fatalf("sequential IDs should be dense")
	}
	rng := rand.New(rand.NewSource(99))
	base := time.Date(2018, 9, 9, 0, 0, 0, 0, time.UTC)
	for i := 0; i < s.NumPeople(); i++ {
		id := s.ID(i)
		tr := ref[id]
		// Random probes plus exact sample instants and one-nanosecond
		// boundaries around them.
		probes := []time.Time{base, base.Add(90 * 24 * time.Hour)}
		for k := 0; k < 20; k++ {
			probes = append(probes, base.Add(time.Duration(rng.Intn(20*24*3600))*time.Second))
		}
		for _, st := range tr.times {
			probes = append(probes, st, st.Add(-time.Nanosecond), st.Add(time.Nanosecond))
		}
		for _, p := range probes {
			want := tr.posAt(p)
			got := s.PosAt(i, p.UnixNano())
			if got != want {
				t.Fatalf("person %d at %v: got %v want %v", id, p, got, want)
			}
		}
	}
}

func TestStoreIndexOf(t *testing.T) {
	b := NewBuilder()
	at := time.Unix(1000, 0)
	for _, id := range []int{40, 10, 30} { // sparse, out of order
		b.Add(id, at, geo.Point{Lat: float64(id)})
	}
	s, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if s.Dense() {
		t.Fatalf("sparse IDs reported dense")
	}
	wantIDs := []int{10, 30, 40}
	for i, id := range wantIDs {
		if s.ID(i) != id {
			t.Fatalf("ID(%d) = %d, want %d", i, s.ID(i), id)
		}
		if got := s.IndexOf(id); got != i {
			t.Fatalf("IndexOf(%d) = %d, want %d", id, got, i)
		}
	}
	for _, id := range []int{-1, 0, 11, 50} {
		if got := s.IndexOf(id); got != -1 {
			t.Fatalf("IndexOf(%d) = %d, want -1", id, got)
		}
	}

	dense, _ := buildRandom(t, 3, 50)
	for i := 0; i < dense.NumPeople(); i++ {
		if dense.IndexOf(dense.ID(i)) != i {
			t.Fatalf("dense IndexOf mismatch at %d", i)
		}
	}
	if dense.IndexOf(-1) != -1 || dense.IndexOf(dense.NumPeople()) != -1 {
		t.Fatalf("dense IndexOf out-of-range should be -1")
	}
}

func TestBuilderEmpty(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatalf("empty builder should error")
	}
}

// TestPosAtZeroAlloc pins the hot lookup at zero allocations.
func TestPosAtZeroAlloc(t *testing.T) {
	s, _ := buildRandom(t, 11, 50)
	at := time.Date(2018, 9, 12, 6, 0, 0, 0, time.UTC).UnixNano()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < s.NumPeople(); i++ {
			_ = s.PosAt(i, at)
		}
	})
	if allocs != 0 {
		t.Fatalf("PosAt allocates %v per sweep, want 0", allocs)
	}
}

func TestRegionsOrderAndShards(t *testing.T) {
	const n = 1000
	const numRegions = 7
	regionOf := func(i int) int {
		switch {
		case i%97 == 0:
			return 0 // unassigned
		case i%101 == 0:
			return 99 // out of range -> unassigned
		default:
			return 1 + i%numRegions
		}
	}
	r := NewRegions(n, numRegions, regionOf)

	// Every person appears exactly once, grouped by region, ascending
	// index within a region.
	seen := make([]bool, n)
	lastReg, lastIdx := -1, -1
	total := 0
	for k := 0; k < r.Len(); k++ {
		i := r.At(k)
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
		reg := r.RegionOf(i)
		if reg < lastReg {
			t.Fatalf("region order regressed: %d after %d", reg, lastReg)
		}
		if reg > lastReg {
			lastReg, lastIdx = reg, -1
		}
		if i <= lastIdx {
			t.Fatalf("index order within region %d regressed", reg)
		}
		lastIdx = i
		total++
	}
	if total != n {
		t.Fatalf("order covers %d of %d people", total, n)
	}
	counts := 0
	for reg := 0; reg <= numRegions; reg++ {
		counts += r.CountIn(reg)
	}
	if counts != n {
		t.Fatalf("region counts sum to %d, want %d", counts, n)
	}

	for _, maxShards := range []int{1, 2, 4, 8, 16, 1000} {
		shards := r.Shards(maxShards)
		covered := 0
		prevEnd := 0
		for _, sh := range shards {
			if sh.Start != prevEnd {
				t.Fatalf("maxShards=%d: shard starts at %d, want %d", maxShards, sh.Start, prevEnd)
			}
			if sh.End <= sh.Start {
				t.Fatalf("maxShards=%d: empty shard %+v", maxShards, sh)
			}
			covered += sh.End - sh.Start
			prevEnd = sh.End
		}
		if covered != n {
			t.Fatalf("maxShards=%d: shards cover %d of %d", maxShards, covered, n)
		}
	}
	if got := len(r.Shards(1)); got < 1 {
		t.Fatalf("Shards(1) returned %d shards", got)
	}
}

func TestRegionTree(t *testing.T) {
	const n = 500
	r := NewRegions(n, 7, func(i int) int { return 1 + i%7 })
	tree := r.Tree(64)
	if tree.People() != n {
		t.Fatalf("root covers %d, want %d", tree.People(), n)
	}
	// Walk: children partition the parent exactly; leaves respect the
	// size bound unless they are single regions.
	var walk func(node *TreeNode)
	var leaves int
	walk = func(node *TreeNode) {
		if len(node.Children) == 0 {
			leaves++
			if node.People() > 64 && node.Lo != node.Hi {
				t.Fatalf("multi-region leaf %+v exceeds bound", node)
			}
			return
		}
		people, start := 0, node.Start
		for _, c := range node.Children {
			if c.Start != start {
				t.Fatalf("child %+v does not continue parent range", c)
			}
			start = c.End
			people += c.People()
			walk(c)
		}
		if start != node.End || people != node.People() {
			t.Fatalf("children of %+v do not partition it", node)
		}
	}
	walk(tree)
	if leaves < 2 {
		t.Fatalf("tree degenerate: %d leaves", leaves)
	}
}
