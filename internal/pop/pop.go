// Package pop is the metro-scale population data model: a columnar
// (struct-of-arrays) store of per-person GPS trajectories plus the
// region-ordered shard plan the prediction and dispatch-aggregation
// stages parallelize over.
//
// The seed pipeline keeps one Go object per person and one slice per
// trajectory — fine at the paper's 8,590 people, hostile at a million:
// pointer-chasing per person, a map lookup per ID, and O(people)
// allocator pressure every window. Store flattens everything into a
// handful of parallel arrays (CSR layout for trajectories, dense
// indices for IDs), so the per-window hot loop walks contiguous memory
// and allocates nothing in steady state.
//
// Store is one implementation of Source — the interface the prediction
// provider consumes. mobility.Streamer is the other: it synthesizes
// positions window-by-window from seeded generators, keeping memory
// O(people) instead of O(people x windows).
package pop

import (
	"fmt"
	"sort"
	"time"

	"mobirescue/internal/geo"
)

// Source yields per-person positions for the prediction stage. i is a
// dense index in [0, NumPeople()); implementations must be safe for
// concurrent PosAt calls with distinct i at the same instant (the
// sharded window pass partitions indices across goroutines).
// Implementations whose PosAt is not safe across *different* instants
// concurrently (cursor-based streamers) additionally implement
// SerialWindows.
type Source interface {
	// NumPeople returns the population size.
	NumPeople() int
	// ID returns the external person ID of dense index i.
	ID(i int) int
	// IndexOf returns the dense index of an external person ID, or -1.
	IndexOf(id int) int
	// PosAt returns person i's position at the given instant
	// (UnixNano). For trace-backed stores this is the last observed
	// sample at or before the instant (clamped to the first sample).
	PosAt(i int, unixNano int64) geo.Point
}

// SerialWindows marks a Source whose PosAt may only be called for one
// instant at a time (per-person cursors advance window by window). The
// prediction provider serializes window computations for such sources.
type SerialWindows interface {
	SerialWindows() bool
}

// FirstPositions is implemented by Sources that can report a cheap
// anchor position per person (first observation, home). The prediction
// provider uses it to assign people to regions for the shard plan;
// sources without it fall back to a single unassigned group, which
// changes shard boundaries but never results.
type FirstPositions interface {
	FirstPos(i int) geo.Point
}

// Store is an immutable columnar trajectory store: person i's samples
// are times[off[i]:off[i+1]] / pos[off[i]:off[i+1]], time-ordered. IDs
// are kept sorted ascending; when they happen to be dense (ids[i] == i,
// which the synthetic population generator guarantees) IndexOf is a
// bounds check instead of a search.
type Store struct {
	ids   []int
	dense bool
	off   []int64
	times []int64 // UnixNano per sample
	pos   []geo.Point
}

var _ Source = (*Store)(nil)

// Builder accumulates samples grouped by person ID. Per-person sample
// order is preserved exactly as added (callers add time-ordered
// samples); person order is normalized to ascending ID at Build.
type Builder struct {
	idx   map[int]int // person ID -> position in people
	ppl   []builderPerson
	count int
}

type builderPerson struct {
	id    int
	times []int64
	pos   []geo.Point
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{idx: make(map[int]int)}
}

// Add appends one sample to a person's trajectory.
func (b *Builder) Add(personID int, t time.Time, p geo.Point) {
	i, ok := b.idx[personID]
	if !ok {
		i = len(b.ppl)
		b.idx[personID] = i
		b.ppl = append(b.ppl, builderPerson{id: personID})
	}
	b.ppl[i].times = append(b.ppl[i].times, t.UnixNano())
	b.ppl[i].pos = append(b.ppl[i].pos, p)
	b.count++
}

// Build flattens the accumulated samples into a Store. It returns an
// error when no samples were added.
func (b *Builder) Build() (*Store, error) {
	if len(b.ppl) == 0 {
		return nil, fmt.Errorf("pop: no samples")
	}
	ppl := b.ppl
	sort.Slice(ppl, func(i, j int) bool { return ppl[i].id < ppl[j].id })
	s := &Store{
		ids:   make([]int, len(ppl)),
		off:   make([]int64, len(ppl)+1),
		times: make([]int64, 0, b.count),
		pos:   make([]geo.Point, 0, b.count),
	}
	s.dense = true
	for i, p := range ppl {
		s.ids[i] = p.id
		if p.id != i {
			s.dense = false
		}
		s.off[i] = int64(len(s.times))
		s.times = append(s.times, p.times...)
		s.pos = append(s.pos, p.pos...)
	}
	s.off[len(ppl)] = int64(len(s.times))
	return s, nil
}

// NumPeople implements Source.
func (s *Store) NumPeople() int { return len(s.ids) }

// NumSamples returns the total sample count across all trajectories.
func (s *Store) NumSamples() int { return len(s.times) }

// ID implements Source.
func (s *Store) ID(i int) int { return s.ids[i] }

// IndexOf implements Source: O(1) when IDs are dense, binary search
// otherwise — never a map, so lookup memory is O(1).
func (s *Store) IndexOf(id int) int {
	if s.dense {
		if id < 0 || id >= len(s.ids) {
			return -1
		}
		return id
	}
	i := sort.SearchInts(s.ids, id)
	if i < len(s.ids) && s.ids[i] == id {
		return i
	}
	return -1
}

// Dense reports whether external IDs equal dense indices.
func (s *Store) Dense() bool { return s.dense }

// PosAt implements Source: the last sample at or before the instant,
// clamped to the first sample — the exact semantics of the seed
// pipeline's per-track posAt, so swapping the layout cannot change a
// single prediction.
func (s *Store) PosAt(i int, unixNano int64) geo.Point {
	lo, hi := s.off[i], s.off[i+1]
	t := s.times[lo:hi]
	// sort.Search over the person's slice: first sample strictly after
	// the instant, minus one.
	idx := sort.Search(len(t), func(k int) bool { return t[k] > unixNano }) - 1
	if idx < 0 {
		idx = 0
	}
	return s.pos[lo+int64(idx)]
}

// SampleCount returns person i's trajectory length.
func (s *Store) SampleCount(i int) int { return int(s.off[i+1] - s.off[i]) }

// FirstPos returns person i's first observed position (used to assign
// people to regions for the shard plan).
func (s *Store) FirstPos(i int) geo.Point { return s.pos[s.off[i]] }
