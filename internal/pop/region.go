package pop

// Regions is the region-ordered shard plan over a population: every
// person is assigned a region (the paper's council districts; 0 means
// unassigned), and Order lists dense person indices grouped by region,
// ascending index within each region. The prediction window pass walks
// Order in shard-sized ranges, so a shard's people share a district —
// the same flood cells, the same spatial-index neighborhoods — and the
// per-shard results merge in fixed range order, keeping outputs
// byte-identical for any worker count (the PR-5 contract).
type Regions struct {
	numRegions int
	region     []int16 // region per dense person index
	order      []int32 // dense indices grouped by region
	starts     []int32 // region r occupies order[starts[r]:starts[r+1]]
}

// NewRegions builds the plan for n people. regionOf maps a dense person
// index to its region; values outside [1, numRegions] are grouped under
// region 0 (unassigned) and still predicted over — sharding never drops
// anybody.
func NewRegions(n, numRegions int, regionOf func(i int) int) *Regions {
	if numRegions < 0 {
		numRegions = 0
	}
	r := &Regions{
		numRegions: numRegions,
		region:     make([]int16, n),
		order:      make([]int32, n),
		starts:     make([]int32, numRegions+2),
	}
	counts := make([]int32, numRegions+1)
	for i := 0; i < n; i++ {
		reg := regionOf(i)
		if reg < 1 || reg > numRegions {
			reg = 0
		}
		r.region[i] = int16(reg)
		counts[reg]++
	}
	next := make([]int32, numRegions+1)
	acc := int32(0)
	for reg := 0; reg <= numRegions; reg++ {
		r.starts[reg] = acc
		next[reg] = acc
		acc += counts[reg]
	}
	r.starts[numRegions+1] = acc
	for i := 0; i < n; i++ {
		reg := r.region[i]
		r.order[next[reg]] = int32(i)
		next[reg]++
	}
	return r
}

// NumRegions returns the region count the plan was built for.
func (r *Regions) NumRegions() int { return r.numRegions }

// Len returns the population size.
func (r *Regions) Len() int { return len(r.order) }

// RegionOf returns the region assigned to dense person index i.
func (r *Regions) RegionOf(i int) int { return int(r.region[i]) }

// At returns the dense person index at position k of the region order.
func (r *Regions) At(k int) int { return int(r.order[k]) }

// CountIn returns how many people are assigned to region reg (0 =
// unassigned).
func (r *Regions) CountIn(reg int) int {
	if reg < 0 || reg > r.numRegions {
		return 0
	}
	return int(r.starts[reg+1] - r.starts[reg])
}

// Shard is one contiguous range [Start, End) of the region order.
type Shard struct{ Start, End int }

// Shards cuts the region order into at most maxShards work units. Cuts
// respect region boundaries where possible (region-pure shards); a
// region larger than the per-shard budget is split into even chunks.
// The plan is a pure function of (population, maxShards) — workers only
// decide how many shards run at once, never where the cuts fall, and
// the merge walks shards in slice order, so results cannot depend on
// scheduling.
func (r *Regions) Shards(maxShards int) []Shard {
	n := len(r.order)
	if n == 0 {
		return nil
	}
	if maxShards < 1 {
		maxShards = 1
	}
	target := (n + maxShards - 1) / maxShards
	var out []Shard
	for reg := 0; reg <= r.numRegions; reg++ {
		lo, hi := int(r.starts[reg]), int(r.starts[reg+1])
		span := hi - lo
		if span == 0 {
			continue
		}
		chunks := (span + target - 1) / target
		per := (span + chunks - 1) / chunks
		for s := lo; s < hi; s += per {
			e := s + per
			if e > hi {
				e = hi
			}
			out = append(out, Shard{Start: s, End: e})
		}
	}
	return out
}

// TreeNode is one node of the hierarchical region tree: inner nodes
// cover a contiguous run of regions, leaves cover either one region or
// (for oversized regions) a sub-range of one. The tree generalizes the
// paper's flat 7-district split — dispatch aggregation at metro scale
// can roll demand up the tree instead of walking every district.
type TreeNode struct {
	// Lo and Hi bound the covered regions (inclusive).
	Lo, Hi int
	// Start and End bound the covered range of the region order.
	Start, End int
	Children   []*TreeNode
}

// People returns how many people the node covers.
func (t *TreeNode) People() int { return t.End - t.Start }

// Tree builds the hierarchical region tree by recursive bisection on
// population: each inner node splits its region run at the point that
// best balances people between the halves. leafPeople bounds leaf size;
// single regions larger than it become leaves anyway (sub-splitting is
// the shard planner's job). The tree is deterministic.
func (r *Regions) Tree(leafPeople int) *TreeNode {
	if leafPeople < 1 {
		leafPeople = 1
	}
	return r.buildNode(0, r.numRegions, leafPeople)
}

func (r *Regions) buildNode(lo, hi, leafPeople int) *TreeNode {
	node := &TreeNode{Lo: lo, Hi: hi, Start: int(r.starts[lo]), End: int(r.starts[hi+1])}
	if lo == hi || node.People() <= leafPeople {
		return node
	}
	// Split the region run where the population halves most evenly.
	half := node.Start + node.People()/2
	cut := lo
	for reg := lo; reg < hi; reg++ {
		if int(r.starts[reg+1]) >= half {
			cut = reg
			break
		}
		cut = reg
	}
	node.Children = []*TreeNode{
		r.buildNode(lo, cut, leafPeople),
		r.buildNode(cut+1, hi, leafPeople),
	}
	return node
}
