// Package train implements MobiRescue's parallel actor–learner training
// pipeline, the A3C-style harness Pensieve [24] trains its dispatch DNN
// with: N logical actors replay the peak training day against a frozen
// snapshot of the current policy on per-actor seeded RNG streams, stream
// their trajectories into a channel, and a single learner absorbs them in
// fixed actor-index order.
//
// # Determinism contract
//
// The trained policy is byte-identical for any Workers value. Three rules
// make that hold, mirroring PR 3's RunDispatcherDays contract:
//
//  1. Rollouts are independent: every actor decides against the same
//     immutable policy snapshot with a private RNG seeded by
//     rl.DeriveSeed(seed, round, actor) — never by goroutine identity or
//     wall clock.
//  2. The actor count is logical, not physical: Config.Actors fixes the
//     data layout; Config.Workers only bounds how many rollouts run at
//     once.
//  3. The learner applies trajectories in actor-index order within each
//     round, reordering completions through a buffer, so the sequence of
//     Observe calls — and therefore every gradient, every replay-buffer
//     slot, every RNG draw — is independent of completion order.
//
// Within a round the pipeline is asynchronous (the learner absorbs actor
// 0's trajectory while actors 1..N-1 are still simulating); across rounds
// there is a barrier, because round r+1's snapshot must include round r's
// updates.
package train

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mobirescue/internal/nn"
	"mobirescue/internal/obs"
	"mobirescue/internal/obs/eventlog"
	"mobirescue/internal/rl"
)

// Exported training telemetry metric names (see README "Observability").
const (
	MetricRounds          = "mobirescue_train_rounds_total"
	MetricEpisodes        = "mobirescue_train_episodes_total"
	MetricTransitions     = "mobirescue_train_transitions_total"
	MetricRoundReward     = "mobirescue_train_round_reward_mean"
	MetricActorSeconds    = "mobirescue_train_actor_episode_seconds"
	MetricLearnerSeconds  = "mobirescue_train_learner_apply_seconds"
	MetricQueueDepth      = "mobirescue_train_learner_queue_depth"
	MetricEpisodeLen      = "mobirescue_train_episode_transitions"
	MetricCheckpointSecs  = "mobirescue_train_checkpoint_seconds"
	MetricCheckpointsDone = "mobirescue_train_checkpoints_total"
)

// Learner is the central policy owner: it hands actors frozen snapshots,
// absorbs their trajectories one transition at a time, and persists its
// full state. *rl.DQN satisfies it.
type Learner interface {
	// SnapshotPolicy returns an immutable deep copy of the current policy.
	SnapshotPolicy() *nn.Network
	// Epsilon is the current exploration rate, given to the round's actors.
	Epsilon() float64
	// Observe absorbs one transition (and may take a gradient step).
	Observe(t rl.Transition)
	// SaveCheckpoint writes the learner's full training state.
	SaveCheckpoint(w io.Writer, episodes uint64) error
}

// Rollout runs one training episode against the frozen policy snapshot,
// returning the trajectory in decision order plus the episode's scalar
// reward (for MobiRescue: timely served requests on the replayed day).
// Implementations must be deterministic in (round, actor, policy, epsilon,
// seed) and safe to call concurrently.
type Rollout func(ctx context.Context, round, actor int, policy *nn.Network, epsilon float64, seed int64) ([]rl.Transition, float64, error)

// Config tunes the trainer.
type Config struct {
	// Actors is the logical actor count per round — it fixes seeds and
	// merge order, so changing it changes the training run. Default 4.
	Actors int
	// Episodes is the total number of episodes to train for (the last
	// round is truncated when Actors does not divide it). Required.
	Episodes int
	// Workers bounds physical rollout concurrency: 0 means GOMAXPROCS, 1
	// forces serial rollouts. Results are byte-identical for any value.
	Workers int
	// Seed derives every actor's RNG stream via rl.DeriveSeed.
	Seed int64
	// CheckpointPath, when set, receives an atomically written learner
	// checkpoint after the final round — and after every CheckpointEvery
	// rounds when that is positive.
	CheckpointPath  string
	CheckpointEvery int
	// Metrics, when non-nil, receives training telemetry (round/episode
	// counters, per-round reward, actor throughput, learner queue depth,
	// checkpoint latency). Nil disables it at zero cost.
	Metrics *obs.Registry
	// Logger, when non-nil, receives per-round structured records.
	Logger *slog.Logger
	// Events, when non-nil, receives one flight-recorder train_round
	// event per round (episodes, mean reward, epsilon, transitions,
	// learner loss) and a checkpoint event per checkpoint write. The
	// trainer emits from the learner goroutine only, so the stream is
	// deterministic for any Workers value. Nil — the default — is free.
	Events *eventlog.Recorder
	// StartRound is the absolute round index the loop starts at (0 for a
	// fresh run). A resumed run sets it to the number of rounds already
	// absorbed so rl.DeriveSeed — keyed by absolute round — hands every
	// actor the same stream the uninterrupted run would have.
	StartRound int
	// RoundHook, when non-nil, runs after each completed round (and any
	// periodic checkpoint) with the absolute index of the round that just
	// finished. A non-nil error aborts training and is returned from Run;
	// crash-safe runs use it to install window snapshots and to stop
	// gracefully (internal/snapshot.ErrStopRequested).
	RoundHook func(round int, stats *Stats) error
}

// Stats summarizes a training run.
type Stats struct {
	// Rewards holds one entry per episode in deterministic (round, actor)
	// order — identical for any Workers value.
	Rewards []float64
	// Episodes and Rounds count completed work; Transitions counts
	// learner-absorbed transitions.
	Episodes, Rounds, Transitions int
	// Checkpoints counts checkpoint files written.
	Checkpoints int
	// Elapsed is the wall-clock training time.
	Elapsed time.Duration
}

// trainMetrics holds optional telemetry handles; the zero value is a
// free no-op.
type trainMetrics struct {
	rounds      *obs.Counter
	episodes    *obs.Counter
	transitions *obs.Counter
	checkpoints *obs.Counter
	roundReward *obs.Gauge
	queueDepth  *obs.Gauge
	actorSecs   *obs.Histogram
	learnSecs   *obs.Histogram
	episodeLen  *obs.Histogram
	ckptSecs    *obs.Histogram
}

// Trainer coordinates the actor pool and the learner. Construct with New.
type Trainer struct {
	learner  Learner
	rollout  Rollout
	cfg      Config
	met      trainMetrics
	episodes uint64 // completed episodes (cumulative, for checkpoints)
}

// New validates the configuration and builds a trainer. base is the
// number of episodes the learner has already absorbed (0 for a cold
// start; the header episode count of a loaded checkpoint when
// warm-starting), so checkpoint headers stay cumulative.
func New(learner Learner, rollout Rollout, base uint64, cfg Config) (*Trainer, error) {
	if learner == nil || rollout == nil {
		return nil, fmt.Errorf("train: learner and rollout required")
	}
	if cfg.Actors <= 0 {
		cfg.Actors = 4
	}
	if cfg.Episodes <= 0 {
		return nil, fmt.Errorf("train: episodes %d must be positive", cfg.Episodes)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("train: workers %d must be >= 0", cfg.Workers)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("train: checkpoint interval %d must be >= 0", cfg.CheckpointEvery)
	}
	if cfg.StartRound < 0 {
		return nil, fmt.Errorf("train: start round %d must be >= 0", cfg.StartRound)
	}
	t := &Trainer{learner: learner, rollout: rollout, cfg: cfg, episodes: base}
	if reg := cfg.Metrics; reg != nil {
		t.met = trainMetrics{
			rounds:      reg.Counter(MetricRounds, "Training rounds completed."),
			episodes:    reg.Counter(MetricEpisodes, "Actor episodes absorbed by the learner."),
			transitions: reg.Counter(MetricTransitions, "Transitions absorbed by the learner."),
			checkpoints: reg.Counter(MetricCheckpointsDone, "Checkpoint files written."),
			roundReward: reg.Gauge(MetricRoundReward, "Mean episode reward of the last round."),
			queueDepth:  reg.Gauge(MetricQueueDepth, "Completed trajectories waiting for in-order application."),
			actorSecs:   reg.Histogram(MetricActorSeconds, "Wall-clock seconds per actor episode.", obs.DefSecondsBuckets),
			learnSecs:   reg.Histogram(MetricLearnerSeconds, "Wall-clock seconds applying one trajectory.", obs.DefSecondsBuckets),
			episodeLen:  reg.Histogram(MetricEpisodeLen, "Transitions per actor episode.", obs.DefCountBuckets),
			ckptSecs:    reg.Histogram(MetricCheckpointSecs, "Wall-clock seconds per checkpoint write.", obs.DefSecondsBuckets),
		}
	}
	return t, nil
}

// Episodes returns the cumulative episode count (base + completed).
func (t *Trainer) Episodes() uint64 { return atomic.LoadUint64(&t.episodes) }

// workers returns the effective physical concurrency bound (>= 1).
func (t *Trainer) workers() int {
	if t.cfg.Workers > 0 {
		return t.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// rolloutResult is one actor's finished episode.
type rolloutResult struct {
	actor  int
	traj   []rl.Transition
	reward float64
	err    error
}

// Run executes the training loop and returns per-episode statistics. On
// error (a failed rollout or context cancellation) it returns the stats
// accumulated so far alongside the error; the learner retains every
// round that completed.
func (t *Trainer) Run(ctx context.Context) (*Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	stats := &Stats{Rewards: make([]float64, 0, t.cfg.Episodes)}
	defer func() { stats.Elapsed = time.Since(start) }()

	remaining := t.cfg.Episodes
	for round := t.cfg.StartRound; remaining > 0; round++ {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		n := t.cfg.Actors
		if n > remaining {
			n = remaining
		}
		if err := t.runRound(ctx, round, n, stats); err != nil {
			return stats, fmt.Errorf("train: round %d: %w", round, err)
		}
		remaining -= n
		stats.Rounds++
		t.met.rounds.Inc()
		if t.cfg.Logger != nil {
			rw := stats.Rewards[len(stats.Rewards)-n:]
			t.cfg.Logger.Debug("training round complete",
				slog.Int("round", round),
				slog.Int("episodes", n),
				slog.Float64("mean_reward", mean(rw)))
		}
		if t.cfg.CheckpointPath != "" && t.cfg.CheckpointEvery > 0 &&
			(round+1)%t.cfg.CheckpointEvery == 0 && remaining > 0 {
			if err := t.checkpoint(stats); err != nil {
				return stats, err
			}
		}
		if t.cfg.RoundHook != nil {
			if err := t.cfg.RoundHook(round, stats); err != nil {
				return stats, err
			}
		}
	}
	if t.cfg.CheckpointPath != "" {
		if err := t.checkpoint(stats); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// runRound rolls out n actor episodes against one policy snapshot (at
// most workers() at a time) and feeds the trajectories to the learner in
// actor-index order.
func (t *Trainer) runRound(ctx context.Context, round, n int, stats *Stats) error {
	snapshot := t.learner.SnapshotPolicy()
	epsilon := t.learner.Epsilon()

	results := make(chan rolloutResult, n)
	workers := t.workers()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				actorStart := time.Now()
				traj, reward, err := t.rollout(ctx, round, i, snapshot, epsilon,
					rl.DeriveSeed(t.cfg.Seed, round, i))
				t.met.actorSecs.ObserveSince(actorStart)
				results <- rolloutResult{actor: i, traj: traj, reward: reward, err: err}
			}
		}()
	}

	// The learner side: a reorder buffer turns completion order into
	// actor-index order. Applying a trajectory is strictly sequential
	// (the learner is single-threaded by design), so the pipeline's
	// speedup comes from overlapping rollouts with application.
	pending := make(map[int]rolloutResult, n)
	nextApply := 0
	var firstErr error
	roundSum := 0.0
	roundTransitions := 0
	for received := 0; received < n; received++ {
		r := <-results
		pending[r.actor] = r
		for {
			rr, ok := pending[nextApply]
			if !ok {
				break
			}
			delete(pending, nextApply)
			nextApply++
			if rr.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("actor %d: %w", rr.actor, rr.err)
				}
				continue
			}
			if firstErr != nil {
				continue // keep ordering but stop mutating the learner
			}
			applyStart := time.Now()
			for _, tr := range rr.traj {
				t.learner.Observe(tr)
			}
			t.met.learnSecs.ObserveSince(applyStart)
			t.met.episodes.Inc()
			t.met.transitions.Add(int64(len(rr.traj)))
			t.met.episodeLen.Observe(float64(len(rr.traj)))
			stats.Rewards = append(stats.Rewards, rr.reward)
			stats.Episodes++
			stats.Transitions += len(rr.traj)
			roundTransitions += len(rr.traj)
			atomic.AddUint64(&t.episodes, 1)
			roundSum += rr.reward
		}
		t.met.queueDepth.Set(float64(len(pending)))
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	t.met.roundReward.Set(roundSum / float64(n))
	if t.cfg.Events != nil {
		e := eventlog.Event{
			Type: eventlog.TypeTrainRound, Round: round + 1,
			Episodes: n, Transitions: roundTransitions,
			Reward: roundSum / float64(n), Epsilon: epsilon,
		}
		// The Learner interface stays minimal; learners that track their
		// last minibatch loss (rl.DQN) surface it in the event.
		if ll, ok := t.learner.(interface{ LastLoss() float64 }); ok {
			e.Loss = ll.LastLoss()
		}
		t.cfg.Events.Emit(e)
	}
	return nil
}

// checkpoint writes the learner state to cfg.CheckpointPath atomically.
func (t *Trainer) checkpoint(stats *Stats) error {
	ckptStart := time.Now()
	if err := SaveCheckpointFile(t.cfg.CheckpointPath, t.learner, t.Episodes()); err != nil {
		return err
	}
	t.met.ckptSecs.ObserveSince(ckptStart)
	t.met.checkpoints.Inc()
	stats.Checkpoints++
	if t.cfg.Events != nil {
		// StartRound keeps the recorded round absolute so a resumed run
		// emits the same bytes as an uninterrupted one.
		t.cfg.Events.Emit(eventlog.Event{
			Type: eventlog.TypeCheckpoint, Round: t.cfg.StartRound + stats.Rounds,
			Path: t.cfg.CheckpointPath,
		})
	}
	if t.cfg.Logger != nil {
		t.cfg.Logger.Debug("checkpoint written",
			slog.String("path", t.cfg.CheckpointPath),
			slog.Uint64("episodes", t.Episodes()),
			slog.Duration("latency", time.Since(ckptStart)))
	}
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
