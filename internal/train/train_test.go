package train

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mobirescue/internal/nn"
	"mobirescue/internal/obs"
	"mobirescue/internal/rl"
)

// fakeLearner records everything the trainer feeds it, in order. Its
// checkpoint bytes are a pure function of that history, so two training
// runs produce identical checkpoints iff the learner saw identical
// Observe sequences — exactly the property the determinism tests pin.
type fakeLearner struct {
	mu        sync.Mutex
	net       *nn.Network
	observed  []rl.Transition
	snapshots int
	saveErr   error
}

func newFakeLearner(t testing.TB) *fakeLearner {
	t.Helper()
	net, err := nn.New(1, []int{2, 3, 2}, nn.ActReLU, nn.ActLinear)
	if err != nil {
		t.Fatal(err)
	}
	return &fakeLearner{net: net}
}

func (f *fakeLearner) SnapshotPolicy() *nn.Network {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.snapshots++
	return f.net.Clone()
}

func (f *fakeLearner) Epsilon() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Depends on absorbed history: actors of the same round must all see
	// the same value regardless of interleaving.
	return 1.0 / float64(1+len(f.observed))
}

func (f *fakeLearner) Observe(t rl.Transition) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.observed = append(f.observed, t)
}

func (f *fakeLearner) SaveCheckpoint(w io.Writer, episodes uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.saveErr != nil {
		return f.saveErr
	}
	if _, err := fmt.Fprintf(w, "episodes=%d\n", episodes); err != nil {
		return err
	}
	for _, tr := range f.observed {
		if _, err := fmt.Fprintf(w, "%v|%d|%v\n", tr.State, tr.Action, tr.Reward); err != nil {
			return err
		}
	}
	return nil
}

// markerRollout returns a deterministic rollout whose transitions encode
// (round, actor, seed, epsilon), with per-actor sleeps arranged so that
// under parallel execution completions arrive badly out of order (actor
// 0 finishes last).
func markerRollout(actors int, jitter time.Duration) Rollout {
	return func(_ context.Context, round, actor int, policy *nn.Network, epsilon float64, seed int64) ([]rl.Transition, float64, error) {
		if jitter > 0 {
			time.Sleep(time.Duration(actors-actor) * jitter)
		}
		traj := make([]rl.Transition, 1+actor%3)
		for i := range traj {
			traj[i] = rl.Transition{
				State:  []float64{float64(round), float64(actor), float64(seed % 1000), epsilon},
				Action: i,
				Reward: float64(round*100 + actor),
			}
		}
		return traj, float64(round*1000 + actor), nil
	}
}

func runOnce(t *testing.T, workers int, cfg Config) (*fakeLearner, *Stats, []byte) {
	t.Helper()
	l := newFakeLearner(t)
	cfg.Workers = workers
	tr, err := New(l, markerRollout(cfg.Actors, 2*time.Millisecond), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := l.SaveCheckpoint(&ckpt, tr.Episodes()); err != nil {
		t.Fatal(err)
	}
	return l, stats, ckpt.Bytes()
}

func TestTrainerDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{Actors: 5, Episodes: 13, Seed: 42}
	baseLearner, baseStats, baseCkpt := runOnce(t, 1, cfg)
	for _, workers := range []int{2, 4, 8} {
		l, stats, ckpt := runOnce(t, workers, cfg)
		if !reflect.DeepEqual(l.observed, baseLearner.observed) {
			t.Fatalf("Workers=%d: learner saw a different transition sequence", workers)
		}
		if !reflect.DeepEqual(stats.Rewards, baseStats.Rewards) {
			t.Fatalf("Workers=%d: rewards %v != %v", workers, stats.Rewards, baseStats.Rewards)
		}
		if !bytes.Equal(ckpt, baseCkpt) {
			t.Fatalf("Workers=%d: checkpoint bytes differ", workers)
		}
	}
	// Sanity on the deterministic layout itself.
	if baseStats.Episodes != 13 || baseStats.Rounds != 3 {
		t.Fatalf("episodes=%d rounds=%d, want 13 and 3", baseStats.Episodes, baseStats.Rounds)
	}
	// Rewards must be in (round, actor) order: round-major, actor-minor.
	want := []float64{0, 1, 2, 3, 4, 1000, 1001, 1002, 1003, 1004, 2000, 2001, 2002}
	if !reflect.DeepEqual(baseStats.Rewards, want) {
		t.Fatalf("reward order %v, want %v", baseStats.Rewards, want)
	}
}

func TestTrainerSnapshotAndEpsilonPerRound(t *testing.T) {
	l, _, _ := runOnce(t, 4, Config{Actors: 3, Episodes: 9, Seed: 7})
	if l.snapshots != 3 {
		t.Errorf("snapshots = %d, want one per round (3)", l.snapshots)
	}
	// Every transition of a round must carry the same epsilon (index 3 of
	// the marker state): actors snapshot it at round start, not mid-round.
	perRound := make(map[float64]map[float64]bool)
	for _, tr := range l.observed {
		round, eps := tr.State[0], tr.State[3]
		if perRound[round] == nil {
			perRound[round] = make(map[float64]bool)
		}
		perRound[round][eps] = true
	}
	for round, epsSet := range perRound {
		if len(epsSet) != 1 {
			t.Errorf("round %v saw %d distinct epsilons, want 1", round, len(epsSet))
		}
	}
}

func TestTrainerDistinctActorSeeds(t *testing.T) {
	l, _, _ := runOnce(t, 2, Config{Actors: 4, Episodes: 8, Seed: 3})
	seeds := make(map[[2]float64]float64) // (round, actor) -> seed marker
	distinct := make(map[float64]bool)
	for _, tr := range l.observed {
		key := [2]float64{tr.State[0], tr.State[1]}
		if prev, ok := seeds[key]; ok && prev != tr.State[2] {
			t.Fatalf("seed for %v changed within an episode", key)
		}
		seeds[key] = tr.State[2]
		distinct[tr.State[2]] = true
	}
	if len(distinct) < 2 {
		t.Errorf("actor seeds not differentiated: %v", distinct)
	}
}

func TestTrainerValidation(t *testing.T) {
	l := newFakeLearner(t)
	rollout := markerRollout(2, 0)
	if _, err := New(nil, rollout, 0, Config{Episodes: 1}); err == nil {
		t.Error("nil learner should error")
	}
	if _, err := New(l, nil, 0, Config{Episodes: 1}); err == nil {
		t.Error("nil rollout should error")
	}
	if _, err := New(l, rollout, 0, Config{Episodes: 0}); err == nil {
		t.Error("zero episodes should error")
	}
	if _, err := New(l, rollout, 0, Config{Episodes: 1, Workers: -1}); err == nil {
		t.Error("negative workers should error")
	}
	if _, err := New(l, rollout, 0, Config{Episodes: 1, CheckpointEvery: -1}); err == nil {
		t.Error("negative checkpoint interval should error")
	}
}

func TestTrainerRolloutErrorStopsLearner(t *testing.T) {
	l := newFakeLearner(t)
	failing := func(_ context.Context, round, actor int, _ *nn.Network, _ float64, _ int64) ([]rl.Transition, float64, error) {
		if actor == 1 {
			return nil, 0, fmt.Errorf("boom")
		}
		return []rl.Transition{{Action: actor, Reward: float64(actor)}}, float64(actor), nil
	}
	tr, err := New(l, failing, 0, Config{Actors: 4, Episodes: 4, Workers: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "actor 1") {
		t.Fatalf("err = %v, want actor 1 failure", err)
	}
	// Actor 0 (before the failure in merge order) was applied; actors 2
	// and 3 (after it) must not have mutated the learner.
	if stats.Episodes != 1 || len(l.observed) != 1 || l.observed[0].Action != 0 {
		t.Errorf("learner absorbed %d episodes (%d transitions), want exactly actor 0",
			stats.Episodes, len(l.observed))
	}
}

func TestTrainerContextCancellation(t *testing.T) {
	l := newFakeLearner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr, err := New(l, markerRollout(2, 0), 0, Config{Actors: 2, Episodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(ctx); err == nil {
		t.Error("cancelled context should abort the run")
	}
	if len(l.observed) != 0 {
		t.Errorf("learner mutated after cancellation: %d transitions", len(l.observed))
	}
}

func TestTrainerCheckpointCadence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")
	l := newFakeLearner(t)
	tr, err := New(l, markerRollout(2, 0), 0, Config{
		Actors: 2, Episodes: 6, Seed: 1,
		CheckpointPath: path, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Rounds 0 and 1 checkpoint mid-run (remaining > 0), round 2 via the
	// final write: 3 total.
	if stats.Checkpoints != 3 {
		t.Errorf("checkpoints = %d, want 3", stats.Checkpoints)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("episodes=6\n")) {
		t.Errorf("final checkpoint header = %q", bytes.SplitN(data, []byte("\n"), 2)[0])
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("checkpoint dir has %d entries, want only the checkpoint", len(entries))
	}
}

func TestSaveCheckpointFileAtomicOnFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.ckpt")
	l := newFakeLearner(t)
	if err := SaveCheckpointFile(path, l, 1); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A failing writer must leave the installed checkpoint untouched and
	// clean up its temp file.
	l.saveErr = fmt.Errorf("disk on fire")
	if err := SaveCheckpointFile(path, l, 2); err == nil {
		t.Fatal("expected save failure")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save clobbered the existing checkpoint")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("temp files leaked: %d entries", len(entries))
	}
	if err := SaveCheckpointFile("", l, 1); err == nil {
		t.Error("empty path should error")
	}
}

func TestLoadCheckpointFileMissing(t *testing.T) {
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "nope.ckpt"), nil); err == nil {
		t.Error("missing file should error")
	}
}

func TestTrainerMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	l := newFakeLearner(t)
	tr, err := New(l, markerRollout(3, time.Millisecond), 0, Config{
		Actors: 3, Episodes: 6, Workers: 3, Seed: 9, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{
		MetricRounds, MetricEpisodes, MetricTransitions,
		MetricRoundReward, MetricActorSeconds, MetricLearnerSeconds,
		MetricQueueDepth, MetricEpisodeLen,
	} {
		if !strings.Contains(out, name) {
			t.Errorf("metric %s not exported", name)
		}
	}
	snap := reg.Snapshot()
	if got := snap[MetricEpisodes]; got != int64(6) {
		t.Errorf("%s = %v, want 6", MetricEpisodes, got)
	}
}

// TestDQNLearnerIntegration drives the real DQN learner through the
// trainer on a synthetic trajectory stream and pins byte-identical
// checkpoints across worker counts — the same property the core-level
// TestParallelTrainMatchesSerial pins end-to-end through the simulator.
func TestDQNLearnerIntegration(t *testing.T) {
	run := func(workers int) []byte {
		cfg := rl.DefaultDQNConfig()
		cfg.Hidden = []int{8}
		cfg.LearnStart = 4
		cfg.BatchSize = 4
		cfg.BufferSize = 64
		cfg.Seed = 5
		agent, err := rl.NewDQN(3, 2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rollout := func(_ context.Context, round, actor int, policy *nn.Network, epsilon float64, seed int64) ([]rl.Transition, float64, error) {
			ap, err := rl.NewActor(policy, epsilon, seed)
			if err != nil {
				return nil, 0, err
			}
			state := []float64{float64(round), float64(actor), 0}
			for i := 0; i < 5; i++ {
				a := ap.SelectAction(state, nil)
				next := []float64{float64(round), float64(actor), float64(i + 1)}
				ap.Observe(rl.Transition{
					State: state, Action: a, Reward: float64(a),
					NextState: next, Done: i == 4,
				})
				state = next
			}
			return ap.Trajectory(), ap.TotalReward(), nil
		}
		tr, err := New(agent, rollout, 0, Config{Actors: 4, Episodes: 8, Workers: workers, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := agent.SaveCheckpoint(&buf, tr.Episodes()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	for _, workers := range []int{4, 8} {
		if !bytes.Equal(run(workers), serial) {
			t.Fatalf("Workers=%d: DQN checkpoint differs from serial", workers)
		}
	}
}
