package train

import (
	"fmt"
	"io"
	"os"

	"mobirescue/internal/atomicfile"
)

// CheckpointLoader restores a learner state written by
// Learner.SaveCheckpoint, returning the episode count recorded in the
// checkpoint header. *rl.DQN satisfies it.
type CheckpointLoader interface {
	LoadCheckpoint(r io.Reader) (episodes uint64, err error)
}

// SaveCheckpointFile writes the learner's checkpoint to path atomically
// via atomicfile.WriteFile (temp file in the same directory, fsync,
// rename). A crash mid-write can therefore never leave a truncated
// checkpoint where a good one used to be — combined with the
// checksummed envelope (internal/nn), readers either get a complete,
// verified state or a typed error.
func SaveCheckpointFile(path string, l Learner, episodes uint64) error {
	if path == "" {
		return fmt.Errorf("train: checkpoint path required")
	}
	err := atomicfile.WriteFile(path, func(w io.Writer) error {
		return l.SaveCheckpoint(w, episodes)
	})
	if err != nil {
		return fmt.Errorf("train: writing checkpoint %s: %w", path, err)
	}
	return nil
}

// LoadCheckpointFile restores a learner from a checkpoint written by
// SaveCheckpointFile, returning the episode count from its header.
func LoadCheckpointFile(path string, l CheckpointLoader) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("train: opening checkpoint: %w", err)
	}
	defer f.Close()
	episodes, err := l.LoadCheckpoint(f)
	if err != nil {
		return 0, fmt.Errorf("train: loading checkpoint %s: %w", path, err)
	}
	return episodes, nil
}
