package train

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// CheckpointLoader restores a learner state written by
// Learner.SaveCheckpoint, returning the episode count recorded in the
// checkpoint header. *rl.DQN satisfies it.
type CheckpointLoader interface {
	LoadCheckpoint(r io.Reader) (episodes uint64, err error)
}

// SaveCheckpointFile writes the learner's checkpoint to path atomically:
// the bytes go to a temporary file in the same directory, are fsynced,
// and only then renamed over path. A crash mid-write can therefore never
// leave a truncated checkpoint where a good one used to be — combined
// with the checksummed envelope (internal/nn), readers either get a
// complete, verified state or a typed error.
func SaveCheckpointFile(path string, l Learner, episodes uint64) error {
	if path == "" {
		return fmt.Errorf("train: checkpoint path required")
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*.tmp")
	if err != nil {
		return fmt.Errorf("train: creating checkpoint temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if err := l.SaveCheckpoint(tmp, episodes); err != nil {
		tmp.Close()
		return fmt.Errorf("train: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("train: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("train: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("train: installing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpointFile restores a learner from a checkpoint written by
// SaveCheckpointFile, returning the episode count from its header.
func LoadCheckpointFile(path string, l CheckpointLoader) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("train: opening checkpoint: %w", err)
	}
	defer f.Close()
	episodes, err := l.LoadCheckpoint(f)
	if err != nil {
		return 0, fmt.Errorf("train: loading checkpoint %s: %w", path, err)
	}
	return episodes, nil
}
