package chaos

import (
	"fmt"
	"math/rand"
	"time"

	"mobirescue/internal/roadnet"
	"mobirescue/internal/sim"
)

// FaultyDispatcher decorates a sim.Dispatcher with the profile's
// sensing and dispatcher faults: stale or dropped active-request views
// before Decide runs, then injected panics, modeled-latency spikes, and
// malformed orders around the decision itself. Wrap it in
// dispatch.Resilient to observe graceful degradation; run it bare to
// prove the simulator survives a crashing dispatcher only if it is
// hardened.
//
// The decorator consumes one deterministic RNG stream advanced once per
// round; with the single-threaded simulator the same seed yields the
// same fault sequence every run.
type FaultyDispatcher struct {
	inner sim.Dispatcher
	in    *Injector
	src   *countingSource // draw counter feeding rng (snapshot resume)
	rng   *rand.Rand
	round int
	prev  []sim.RequestState // previous round's request view (for staleness)
}

var _ sim.Dispatcher = (*FaultyDispatcher)(nil)

// WrapDispatcher decorates inner with the injector's dispatcher and
// sensing faults. With a disabled profile, inner is returned unchanged.
func (in *Injector) WrapDispatcher(inner sim.Dispatcher) sim.Dispatcher {
	if !in.profile.Enabled() {
		return inner
	}
	// A distinct stream from the schedule RNG, still seed-derived. The
	// counting wrapper lets snapshots record the stream position.
	src := &countingSource{src: rand.NewSource(faultySeed(in.seed))}
	return &FaultyDispatcher{
		inner: inner,
		in:    in,
		src:   src,
		rng:   rand.New(src),
	}
}

// Name implements sim.Dispatcher, keeping results keyed by the inner
// method's name.
func (d *FaultyDispatcher) Name() string { return d.inner.Name() }

// Inner returns the wrapped dispatcher.
func (d *FaultyDispatcher) Inner() sim.Dispatcher { return d.inner }

// Decide implements sim.Dispatcher.
func (d *FaultyDispatcher) Decide(snap *sim.Snapshot) ([]sim.Order, time.Duration) {
	d.round++
	p := d.in.profile
	view := snap

	// Sensing faults perturb what the dispatcher sees, never the
	// simulator's own state: the snapshot is copied before mutation.
	if d.rng.Float64() < p.StaleSnapshotProb && d.prev != nil {
		cp := *snap
		cp.ActiveRequests = d.prev
		view = &cp
		d.in.met.stale.Inc()
		d.in.emit("stale_snapshot")
	} else if d.rng.Float64() < p.SenseDropProb && len(snap.ActiveRequests) > 0 {
		keep := dropRequests(d.rng, snap.ActiveRequests, p.SenseDropFrac)
		cp := *snap
		cp.ActiveRequests = keep
		view = &cp
		d.in.met.drops.Inc()
		d.in.emit("sense_drop")
	}
	d.prev = append([]sim.RequestState(nil), snap.ActiveRequests...)

	if d.rng.Float64() < p.PanicProb {
		d.in.met.panics.Inc()
		d.in.emit("panic")
		panic(fmt.Sprintf("chaos: injected dispatcher panic (round %d, method %s)", d.round, d.inner.Name()))
	}

	orders, delay := d.inner.Decide(view)

	if d.rng.Float64() < p.LatencySpikeProb && p.LatencySpikeMax > 0 {
		delay += time.Duration(d.rng.Float64() * float64(p.LatencySpikeMax))
		d.in.met.spikes.Inc()
		d.in.emit("latency_spike")
	}
	if d.rng.Float64() < p.MalformedOrderProb && len(orders) > 0 {
		orders = d.corrupt(orders)
		d.in.met.malformed.Inc()
		d.in.emit("malformed")
	}
	return orders, delay
}

// dropRequests removes ~frac of the view, deterministically.
func dropRequests(rng *rand.Rand, reqs []sim.RequestState, frac float64) []sim.RequestState {
	drop := int(float64(len(reqs)) * frac)
	if drop <= 0 {
		drop = 1
	}
	if drop >= len(reqs) {
		drop = len(reqs) - 1
	}
	if drop < 0 {
		return nil
	}
	dropped := make(map[int]bool, drop)
	for _, i := range rng.Perm(len(reqs))[:drop] {
		dropped[i] = true
	}
	keep := make([]sim.RequestState, 0, len(reqs)-drop)
	for i, rq := range reqs {
		if !dropped[i] {
			keep = append(keep, rq)
		}
	}
	return keep
}

// corrupt injects one malformed-order fault into a copy of the batch:
// an unknown vehicle, an out-of-range target, or a duplicate order.
func (d *FaultyDispatcher) corrupt(orders []sim.Order) []sim.Order {
	out := append([]sim.Order(nil), orders...)
	i := d.rng.Intn(len(out))
	switch d.rng.Intn(3) {
	case 0: // unknown vehicle
		out[i].Vehicle = sim.VehicleID(1_000_000 + d.rng.Intn(1000))
	case 1: // out-of-range target segment
		out[i].ToDepot = false
		out[i].Target = roadnet.SegmentID(1<<30 + int32(d.rng.Intn(1000)))
		out[i].Route = nil
	default: // duplicate order for the same vehicle
		dup := out[i]
		dup.Route = nil
		out = append(out, dup)
	}
	return out
}
