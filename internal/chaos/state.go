package chaos

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"

	"mobirescue/internal/sim"
)

// Crash-safe state capture for the dispatcher-fault decorator
// (internal/snapshot). math/rand sources cannot export their internal
// state, so the decorator routes every draw through a counting wrapper
// and a restore replays the stream: recreate the seed-derived source and
// burn the recorded number of draws. The cost is linear in draws per
// run-day, which is a few dozen per round — microseconds in practice.

// countingSource wraps a rand.Source and counts Int63 calls. It
// deliberately does NOT implement rand.Source64: rand.Rand would then
// serve Uint64 from the fast path without counting, and (worse) change
// the draw sequence relative to the unwrapped source. Every generator
// method this package uses (Float64, Intn, Perm) routes through Int63.
type countingSource struct {
	src rand.Source
	n   uint64
}

// Int63 implements rand.Source.
func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

// Seed implements rand.Source.
func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// faultySeed derives the dispatcher-fault stream seed from the schedule
// seed — one definition shared by construction and restore.
func faultySeed(seed int64) int64 { return seed*31 + 17 }

// faultyWire is the decorator's mutable state.
type faultyWire struct {
	Draws   uint64
	Round   int
	HasPrev bool
	Prev    []sim.RequestState
	Inner   []byte // wrapped dispatcher chain blob (nil when stateless)
}

// CaptureState implements sim.StateCodec, delegating to the inner
// dispatcher when it carries state of its own.
func (d *FaultyDispatcher) CaptureState() ([]byte, error) {
	w := faultyWire{
		Draws:   d.src.n,
		Round:   d.round,
		HasPrev: d.prev != nil,
		Prev:    d.prev,
	}
	if c, ok := d.inner.(sim.StateCodec); ok {
		blob, err := c.CaptureState()
		if err != nil {
			return nil, err
		}
		w.Inner = blob
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("chaos: encoding dispatcher state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreState implements sim.StateCodec: the inner dispatcher is
// restored first (it can fail; the decorator stays untouched), then the
// RNG stream is replayed to the captured position.
func (d *FaultyDispatcher) RestoreState(blob []byte) error {
	var w faultyWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&w); err != nil {
		return fmt.Errorf("chaos: decoding dispatcher state: %w", err)
	}
	if w.Round < 0 {
		return fmt.Errorf("chaos: snapshot round %d out of range", w.Round)
	}
	if c, ok := d.inner.(sim.StateCodec); ok {
		if err := c.RestoreState(w.Inner); err != nil {
			return err
		}
	}
	src := &countingSource{src: rand.NewSource(faultySeed(d.in.seed))}
	for i := uint64(0); i < w.Draws; i++ {
		src.src.Int63()
	}
	src.n = w.Draws
	d.src = src
	d.rng = rand.New(src)
	d.round = w.Round
	d.prev = nil
	if w.HasPrev {
		d.prev = w.Prev
		if d.prev == nil {
			// gob collapses empty-but-non-nil; the staleness branch only
			// checks nilness, so restore an empty view faithfully.
			d.prev = []sim.RequestState{}
		}
	}
	return nil
}
