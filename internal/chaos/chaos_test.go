package chaos

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"mobirescue/internal/dispatch"
	"mobirescue/internal/roadnet"
	"mobirescue/internal/sim"
)

var chaosStart = time.Date(2018, 9, 16, 0, 0, 0, 0, time.UTC)

func testCity(t testing.TB) *roadnet.City {
	t.Helper()
	cfg := roadnet.DefaultGenConfig()
	cfg.GridRows, cfg.GridCols = 4, 4
	city, err := roadnet.GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return city
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"", "off", "none", "light", "default", "moderate", "heavy"} {
		if _, err := ProfileByName(name); err != nil {
			t.Errorf("ProfileByName(%q): %v", name, err)
		}
	}
	if _, err := ProfileByName("tornado"); err == nil {
		t.Error("unknown profile should error")
	}
	if Off().Enabled() {
		t.Error("Off() must be disabled")
	}
	for _, p := range []Profile{LightProfile(), DefaultProfile(), HeavyProfile()} {
		if !p.Enabled() {
			t.Errorf("profile %q should be enabled", p.Name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %q invalid: %v", p.Name, err)
		}
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []func(*Profile){
		func(p *Profile) { p.SurgesPerHour = -1 },
		func(p *Profile) { p.PanicProb = 1.5 },
		func(p *Profile) { p.SenseDropFrac = -0.1 },
		func(p *Profile) { p.SurgeSegments = 0 },
		func(p *Profile) { p.BreakdownMeanDuration = 0 },
		func(p *Profile) { p.LatencySpikeMax = 0 },
	}
	for i, mut := range bad {
		p := DefaultProfile()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	// A disabled profile validates regardless of garbage knobs.
	p := Off()
	p.PanicProb = 99
	if err := p.Validate(); err != nil {
		t.Errorf("disabled profile should validate: %v", err)
	}
}

func TestInjectorSchedulesDeterministic(t *testing.T) {
	city := testCity(t)
	build := func(seed int64) *Injector {
		in, err := NewInjector(HeavyProfile(), seed, city.Graph, chaosStart, 24*time.Hour, 8)
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := build(7), build(7)
	if !reflect.DeepEqual(a.VehicleFaults(), b.VehicleFaults()) {
		t.Error("vehicle-fault schedules differ for identical seeds")
	}
	if a.NumSurges() != b.NumSurges() {
		t.Errorf("surge counts differ: %d vs %d", a.NumSurges(), b.NumSurges())
	}
	if a.NumSurges() == 0 {
		t.Fatal("heavy profile over 24h scheduled no surges")
	}
	if len(a.VehicleFaults()) == 0 {
		t.Fatal("heavy profile over 24h scheduled no breakdowns")
	}
	for h := 0; h < 24; h++ {
		at := chaosStart.Add(time.Duration(h) * time.Hour)
		if !reflect.DeepEqual(a.ClosedAt(at), b.ClosedAt(at)) {
			t.Errorf("ClosedAt(%v) differs", at)
		}
	}
	// A different seed yields a different schedule.
	c := build(8)
	if reflect.DeepEqual(a.VehicleFaults(), c.VehicleFaults()) && a.NumSurges() == c.NumSurges() {
		t.Error("different seeds produced identical schedules (suspicious)")
	}
}

func TestWrapCostClosesSurgeSegments(t *testing.T) {
	city := testCity(t)
	in, err := NewInjector(HeavyProfile(), 3, city.Graph, chaosStart, 24*time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	prov := in.WrapCost(sim.StaticCost{})
	var at time.Time
	var closed map[roadnet.SegmentID]bool
	for m := 0; m < 24*60; m += 5 {
		tm := chaosStart.Add(time.Duration(m) * time.Minute)
		if c := in.ClosedAt(tm); len(c) > 0 {
			at, closed = tm, c
			break
		}
	}
	if closed == nil {
		t.Fatal("no surge active anywhere in the window")
	}
	model := prov.CostAt(at)
	openCount := 0
	for sid := range closed {
		if _, open := model.SegmentTime(city.Graph.Segment(sid)); open {
			t.Errorf("surge segment %d still open", sid)
		}
	}
	for sid := 0; sid < city.Graph.NumSegments(); sid++ {
		if closed[roadnet.SegmentID(sid)] {
			continue
		}
		if _, open := model.SegmentTime(city.Graph.Segment(roadnet.SegmentID(sid))); open {
			openCount++
		}
	}
	if openCount == 0 {
		t.Error("surge closed the whole network")
	}
	// Disabled profile: base passes through untouched.
	off, err := NewInjector(Off(), 3, city.Graph, chaosStart, 24*time.Hour, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := sim.StaticCost{}
	if got := off.WrapCost(base); got != sim.CostProvider(base) {
		t.Error("disabled injector should return base provider unchanged")
	}
}

// scriptedDisp returns one fixed order per round.
type scriptedDisp struct{ calls int }

func (d *scriptedDisp) Name() string { return "scripted" }
func (d *scriptedDisp) Decide(snap *sim.Snapshot) ([]sim.Order, time.Duration) {
	d.calls++
	return []sim.Order{{Vehicle: 0, Target: snap.ActiveRequests[0].Seg}}, time.Second
}

func TestFaultyDispatcherDeterministic(t *testing.T) {
	city := testCity(t)
	snapFor := func() *sim.Snapshot {
		pos, err := city.Graph.AtLandmark(city.Hospitals[0])
		if err != nil {
			t.Fatal(err)
		}
		return &sim.Snapshot{
			Time:   chaosStart,
			City:   city,
			Cost:   roadnet.FreeFlow{},
			Router: roadnet.NewRouter(city.Graph, roadnet.FreeFlow{}),
			Vehicles: []sim.VehicleState{
				{ID: 0, Pos: pos, Phase: sim.PhaseIdle},
			},
			ActiveRequests: []sim.RequestState{
				{ID: 0, Seg: city.Graph.Out(city.Hospitals[1])[0], AppearAt: chaosStart},
				{ID: 1, Seg: city.Graph.Out(city.Hospitals[2])[0], AppearAt: chaosStart},
				{ID: 2, Seg: city.Graph.Out(city.Hospitals[3])[0], AppearAt: chaosStart},
			},
		}
	}
	type roundOut struct {
		orders   int
		delay    time.Duration
		panicked bool
	}
	run := func(seed int64) []roundOut {
		in, err := NewInjector(HeavyProfile(), seed, city.Graph, chaosStart, 24*time.Hour, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := in.WrapDispatcher(&scriptedDisp{})
		if d.Name() != "scripted" {
			t.Fatalf("wrapped Name = %q", d.Name())
		}
		var out []roundOut
		for i := 0; i < 300; i++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						out = append(out, roundOut{panicked: true})
					}
				}()
				orders, delay := d.Decide(snapFor())
				out = append(out, roundOut{orders: len(orders), delay: delay})
			}()
		}
		return out
	}
	a, b := run(11), run(11)
	if !reflect.DeepEqual(a, b) {
		t.Error("dispatcher fault sequences differ for identical seeds")
	}
	var panics, spikes, malformed int
	for _, r := range a {
		if r.panicked {
			panics++
		}
		if r.delay > time.Second {
			spikes++
		}
		if r.orders > 1 {
			malformed++
		}
	}
	if panics == 0 {
		t.Error("heavy profile should inject panics over 300 rounds")
	}
	if spikes == 0 {
		t.Error("heavy profile should inject latency spikes over 300 rounds")
	}
	if malformed == 0 {
		t.Error("heavy profile should inject duplicate orders over 300 rounds")
	}
	// Disabled profile returns the inner dispatcher unchanged.
	off, err := NewInjector(Off(), 1, city.Graph, chaosStart, time.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	inner := &scriptedDisp{}
	if got := off.WrapDispatcher(inner); got != sim.Dispatcher(inner) {
		t.Error("disabled injector should return inner dispatcher unchanged")
	}
}

func TestNoisyPredictDeterministic(t *testing.T) {
	base := func(time.Time) map[roadnet.SegmentID]float64 {
		return map[roadnet.SegmentID]float64{1: 2, 2: 3, 9: 0.5}
	}
	p := DefaultProfile()
	at := chaosStart.Add(3 * time.Hour)
	n1 := NoisyPredict(p, 5, base)
	n2 := NoisyPredict(p, 5, base)
	a, b := n1(at), n2(at)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("noise not deterministic: %v vs %v", a, b)
	}
	if reflect.DeepEqual(a, base(at)) {
		t.Error("noise left the prediction untouched (possible but vanishingly unlikely)")
	}
	for seg, v := range a {
		if v <= 0 {
			t.Errorf("segment %d noised to %v, want > 0 (non-positive entries are dropped)", seg, v)
		}
	}
	// Disabled or zero-noise profiles pass the function through.
	if got := NoisyPredict(Off(), 5, base); reflect.ValueOf(got).Pointer() != reflect.ValueOf(base).Pointer() {
		t.Error("disabled profile should return fn unchanged")
	}
	if NoisyPredict(p, 5, nil) != nil {
		t.Error("nil fn should stay nil")
	}
}

// chaoticRun executes one short simulated day on the test city with the
// given profile and seed, assembling exactly what core.runDay assembles:
// surge-wrapped cost under the rescue-crawl adapter, scheduled vehicle
// faults, and the injector-wrapped dispatcher hardened by
// dispatch.Resilient.
func chaoticRun(t *testing.T, city *roadnet.City, p Profile, seed int64) *sim.Result {
	t.Helper()
	cfg := sim.DefaultConfig(chaosStart)
	cfg.Duration = 8 * time.Hour
	var reqs []sim.Request
	for i := 0; i < 40; i++ {
		seg := roadnet.SegmentID((i * 13) % city.Graph.NumSegments())
		reqs = append(reqs, sim.Request{
			ID: sim.RequestID(i), Seg: seg,
			AppearAt: chaosStart.Add(time.Duration(i) * 10 * time.Minute),
		})
	}
	var starts []roadnet.Position
	for i := 0; i < 4; i++ {
		pos, err := city.Graph.AtLandmark(city.Hospitals[i%len(city.Hospitals)])
		if err != nil {
			t.Fatal(err)
		}
		starts = append(starts, pos)
	}
	var civilian sim.CostProvider = sim.StaticCost{}
	var disp sim.Dispatcher = dispatch.NewGreedy()
	if p.Enabled() {
		in, err := NewInjector(p, seed, city.Graph, cfg.Start, cfg.Duration, len(starts))
		if err != nil {
			t.Fatal(err)
		}
		civilian = in.WrapCost(civilian)
		cfg.VehicleFaults = in.VehicleFaults()
		disp = dispatch.NewResilient(in.WrapDispatcher(disp), dispatch.DefaultResilientConfig())
	}
	costProv := sim.RescueCostProvider{Base: civilian, Crawl: cfg.CrawlFactor}
	s, err := sim.New(city, costProv, disp, reqs, starts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChaosRunReportByteIdentical is the repo's chaos determinism
// fixture: the same -chaos-seed must reproduce the same chaotic run, so
// two fresh runs with identical seeds yield byte-identical resilience
// reports. No panic may escape the resilient wrapper.
func TestChaosRunReportByteIdentical(t *testing.T) {
	city := testCity(t)
	baseline := chaoticRun(t, city, Off(), 0)
	report := func(seed int64) []byte {
		faulty := chaoticRun(t, city, HeavyProfile(), seed)
		var buf bytes.Buffer
		if err := sim.WriteResilienceReport(&buf, baseline, faulty); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Seed 42 is known to schedule vehicle faults and mid-episode
	// reroutes on this city; not every seed produces observable
	// hardening events on an 8-hour window.
	if faulty := chaoticRun(t, city, HeavyProfile(), 42); !faulty.Resilience.Any() {
		t.Error("seed-42 heavy run recorded no hardening events")
	}
	a, b := report(42), report(42)
	if !bytes.Equal(a, b) {
		t.Errorf("same chaos seed produced different reports:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if c := report(43); bytes.Equal(a, c) {
		t.Log("different seeds produced identical reports (possible, but worth a look)")
	}
}
