package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mobirescue/internal/obs"
	"mobirescue/internal/obs/eventlog"
	"mobirescue/internal/roadnet"
	"mobirescue/internal/sim"
)

// Exported chaos metric names (see README "Resilience & chaos testing").
const (
	MetricSurges          = "mobirescue_chaos_surges_total"
	MetricStallsScheduled = "mobirescue_chaos_vehicle_stalls_scheduled_total"
	MetricPanicsInjected  = "mobirescue_chaos_panics_injected_total"
	MetricLatencySpikes   = "mobirescue_chaos_latency_spikes_total"
	MetricMalformedOrders = "mobirescue_chaos_malformed_orders_total"
	MetricSenseDrops      = "mobirescue_chaos_sense_drops_total"
	MetricStaleSnapshots  = "mobirescue_chaos_stale_snapshots_total"
)

// chaosMetrics are the injector's optional counters; all fields are nil
// (no-op) until EnableMetrics is called.
type chaosMetrics struct {
	panics    *obs.Counter
	spikes    *obs.Counter
	malformed *obs.Counter
	drops     *obs.Counter
	stale     *obs.Counter
}

// surge is one flash-flood event: a batch of segments closed for a
// window on top of the scheduled flood model.
type surge struct {
	at       time.Time
	until    time.Time
	segments []roadnet.SegmentID
}

// Injector holds the precomputed fault schedules of one chaotic run.
// Construction draws every random number in a fixed order, so the same
// (profile, seed, graph, window, fleet) always yields the same
// schedules. The per-round dispatcher faults consume a second RNG
// stream advanced once per Decide, which is equally deterministic for
// the single-threaded simulator.
type Injector struct {
	profile Profile
	seed    int64
	start   time.Time
	surges  []surge
	faults  []sim.VehicleFault
	met     chaosMetrics
	ev      *eventlog.Recorder
}

// NewInjector precomputes the fault schedules for one simulation window
// of the given city and fleet size.
func NewInjector(p Profile, seed int64, g *roadnet.Graph, start time.Time, duration time.Duration, vehicles int) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if g == nil || g.NumSegments() == 0 {
		return nil, fmt.Errorf("chaos: graph with segments required")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("chaos: duration must be positive")
	}
	in := &Injector{profile: p, seed: seed, start: start}
	if !p.Enabled() {
		return in, nil
	}
	rng := rand.New(rand.NewSource(seed))
	in.surges = buildSurges(p, rng, g, start, duration)
	in.faults = buildVehicleFaults(p, rng, start, duration, vehicles)
	return in, nil
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile { return in.profile }

// Seed returns the schedule seed.
func (in *Injector) Seed() int64 { return in.seed }

// NumSurges returns how many flash-flood surges the schedule contains.
func (in *Injector) NumSurges() int { return len(in.surges) }

// EnableMetrics registers the injector's fault counters with reg. A nil
// registry is a no-op.
func (in *Injector) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter(MetricSurges, "Flash-flood surges scheduled.").Add(int64(len(in.surges)))
	reg.Counter(MetricStallsScheduled, "Vehicle breakdowns scheduled.").Add(int64(len(in.faults)))
	in.met = chaosMetrics{
		panics:    reg.Counter(MetricPanicsInjected, "Dispatcher panics injected."),
		spikes:    reg.Counter(MetricLatencySpikes, "Decision latency spikes injected."),
		malformed: reg.Counter(MetricMalformedOrders, "Malformed orders injected."),
		drops:     reg.Counter(MetricSenseDrops, "Active-request view drop faults injected."),
		stale:     reg.Counter(MetricStaleSnapshots, "Stale-snapshot faults injected."),
	}
}

// SetEvents attaches a flight-recorder stream: dispatcher/sensing
// faults become typed events as they fire. A nil recorder (the default)
// keeps every emission a single nil check. Call LogSchedule separately
// to record the precomputed surge/breakdown schedules up front.
func (in *Injector) SetEvents(rec *eventlog.Recorder) { in.ev = rec }

// LogSchedule records the injector's precomputed schedules — one surge
// event per flash flood (with its segment count and duration) — so the
// log carries the planned perturbations before the run replays them.
// Vehicle breakdowns are not pre-logged: the simulator emits a stall
// fault at the instant each one is applied.
func (in *Injector) LogSchedule(rec *eventlog.Recorder) {
	if rec == nil {
		return
	}
	for _, s := range in.surges {
		rec.Emit(eventlog.Event{
			Type: eventlog.TypeFault, Kind: "surge",
			N: len(s.segments), DurMS: s.until.Sub(s.at).Milliseconds(), T: s.at,
		})
	}
}

// emit records one fired fault when a recorder is attached.
func (in *Injector) emit(kind string) {
	if in.ev != nil {
		in.ev.Emit(eventlog.Event{Type: eventlog.TypeFault, Kind: kind})
	}
}

// buildSurges draws Poisson surge arrivals over the window and grows a
// connected segment patch around each surge's seed segment.
func buildSurges(p Profile, rng *rand.Rand, g *roadnet.Graph, start time.Time, duration time.Duration) []surge {
	if p.SurgesPerHour <= 0 {
		return nil
	}
	var out []surge
	t := 0.0 // hours into the window
	hours := duration.Hours()
	for {
		t += rng.ExpFloat64() / p.SurgesPerHour
		if t >= hours {
			break
		}
		at := start.Add(time.Duration(t * float64(time.Hour)))
		d := time.Duration(rng.ExpFloat64() * float64(p.SurgeMeanDuration))
		if d < time.Minute {
			d = time.Minute
		}
		seed := roadnet.SegmentID(rng.Intn(g.NumSegments()))
		out = append(out, surge{
			at:       at,
			until:    at.Add(d),
			segments: surgePatch(g, seed, p.SurgeSegments),
		})
	}
	return out
}

// surgePatch grows a connected patch of up to n segments from seed via
// BFS over segment endpoints — a spatially coherent flash flood rather
// than scattered closures.
func surgePatch(g *roadnet.Graph, seed roadnet.SegmentID, n int) []roadnet.SegmentID {
	if n <= 0 {
		n = 1
	}
	visited := map[roadnet.SegmentID]bool{seed: true}
	patch := []roadnet.SegmentID{seed}
	queue := []roadnet.SegmentID{seed}
	for len(queue) > 0 && len(patch) < n {
		cur := queue[0]
		queue = queue[1:]
		s := g.Segment(cur)
		// Both travel directions at both endpoints flood together.
		for _, lm := range []roadnet.LandmarkID{s.From, s.To} {
			for _, adj := range [][]roadnet.SegmentID{g.Out(lm), g.In(lm)} {
				for _, sid := range adj {
					if visited[sid] {
						continue
					}
					visited[sid] = true
					patch = append(patch, sid)
					queue = append(queue, sid)
					if len(patch) >= n {
						return patch
					}
				}
			}
		}
	}
	return patch
}

// buildVehicleFaults draws per-vehicle Poisson breakdown arrivals.
func buildVehicleFaults(p Profile, rng *rand.Rand, start time.Time, duration time.Duration, vehicles int) []sim.VehicleFault {
	if p.BreakdownsPerVehicleHour <= 0 || vehicles <= 0 {
		return nil
	}
	hours := duration.Hours()
	var out []sim.VehicleFault
	for v := 0; v < vehicles; v++ {
		t := 0.0
		for {
			t += rng.ExpFloat64() / p.BreakdownsPerVehicleHour
			if t >= hours {
				break
			}
			d := time.Duration(rng.ExpFloat64() * float64(p.BreakdownMeanDuration))
			if d < time.Minute {
				d = time.Minute
			}
			out = append(out, sim.VehicleFault{
				Vehicle:  sim.VehicleID(v),
				At:       start.Add(time.Duration(t * float64(time.Hour))),
				Duration: d,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// VehicleFaults returns the precomputed breakdown schedule, ready for
// sim.Config.VehicleFaults.
func (in *Injector) VehicleFaults() []sim.VehicleFault {
	return append([]sim.VehicleFault(nil), in.faults...)
}

// ClosedAt returns the set of surge-closed segments at time t, or nil
// when no surge is active.
func (in *Injector) ClosedAt(t time.Time) map[roadnet.SegmentID]bool {
	var closed map[roadnet.SegmentID]bool
	for _, s := range in.surges {
		if t.Before(s.at) || !t.Before(s.until) {
			continue
		}
		if closed == nil {
			closed = make(map[roadnet.SegmentID]bool)
		}
		for _, sid := range s.segments {
			closed[sid] = true
		}
	}
	return closed
}

// surgeCost is a roadnet.CostModel decorator closing the surge set on
// top of the base model.
type surgeCost struct {
	base   roadnet.CostModel
	closed map[roadnet.SegmentID]bool
}

var _ roadnet.CostModel = surgeCost{}

// SegmentTime implements roadnet.CostModel.
func (c surgeCost) SegmentTime(s roadnet.Segment) (float64, bool) {
	if c.closed[s.ID] {
		return math.Inf(1), false
	}
	if c.base == nil {
		return s.FreeFlowTime(), true
	}
	return c.base.SegmentTime(s)
}

// costProvider decorates a sim.CostProvider with the surge schedule.
type costProvider struct {
	base sim.CostProvider
	in   *Injector
}

var _ sim.CostProvider = costProvider{}

// CostAt implements sim.CostProvider.
func (p costProvider) CostAt(t time.Time) roadnet.CostModel {
	var base roadnet.CostModel = roadnet.FreeFlow{}
	if p.base != nil {
		base = p.base.CostAt(t)
	}
	closed := p.in.ClosedAt(t)
	if len(closed) == 0 {
		return base
	}
	return surgeCost{base: base, closed: closed}
}

// WrapCost layers the surge schedule on top of base. The returned
// provider should sit *under* any rescue-crawl adapter so surge
// closures stay visible to flood-aware routing as "closed", exactly
// like scheduled flood closures.
func (in *Injector) WrapCost(base sim.CostProvider) sim.CostProvider {
	if !in.profile.Enabled() || len(in.surges) == 0 {
		return base
	}
	return costProvider{base: base, in: in}
}

// NoisyPredict decorates a predicted-request-map function with
// multiplicative noise (relative stddev p.PredictNoise). The noise is
// derived from the seed and the query instant only, so it is
// deterministic regardless of call order, and iteration is keyed in
// sorted segment order so equal inputs perturb identically.
func NoisyPredict(p Profile, seed int64, fn func(time.Time) map[roadnet.SegmentID]float64) func(time.Time) map[roadnet.SegmentID]float64 {
	if !p.Enabled() || p.PredictNoise <= 0 || fn == nil {
		return fn
	}
	return func(t time.Time) map[roadnet.SegmentID]float64 {
		pred := fn(t)
		if len(pred) == 0 {
			return pred
		}
		keys := make([]roadnet.SegmentID, 0, len(pred))
		for seg := range pred {
			keys = append(keys, seg)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		rng := rand.New(rand.NewSource(seed ^ t.Unix()))
		out := make(map[roadnet.SegmentID]float64, len(pred))
		for _, seg := range keys {
			scale := 1 + p.PredictNoise*rng.NormFloat64()
			if scale < 0 {
				scale = 0
			}
			if v := pred[seg] * scale; v > 0 {
				out[seg] = v
			}
		}
		return out
	}
}
