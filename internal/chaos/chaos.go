// Package chaos is a deterministic, seeded fault injector for the
// rescue-operations simulator. The paper's whole premise is dispatching
// *during a disaster*, yet a benign substrate — roads that only degrade
// on schedule, dispatchers that never fail, orders that are trusted
// blindly — only exercises the happy path. This package perturbs a
// running episode with four fault families:
//
//   - Road surges: surprise flash-flood closures (and re-openings) of
//     spatially coherent segment batches, layered on top of the
//     scheduled flood model via a roadnet.CostModel decorator.
//   - Vehicle faults: breakdowns that stall a vehicle in place for a
//     sampled duration.
//   - Sensing faults: dropped or stale active-request views and noised
//     predicted-request maps.
//   - Dispatcher faults: injected Decide panics, modeled-latency
//     spikes, and malformed orders (unknown vehicles, out-of-range
//     targets, duplicates).
//
// Everything is derived from a Profile plus one seed: the same
// (profile, seed, city, window) always yields byte-identical fault
// schedules, so MobiRescue and the baselines can be compared under
// identical chaos, and any chaotic run can be reproduced exactly.
package chaos

import (
	"fmt"
	"time"
)

// Profile bundles the intensity knobs of every fault family. The zero
// value (and Off()) disables injection entirely.
type Profile struct {
	// Name identifies the profile ("off", "light", "default", "heavy",
	// or a custom label). An empty name or "off" disables injection.
	Name string

	// SurgesPerHour is the expected number of flash-flood surges per
	// hour (Poisson arrivals).
	SurgesPerHour float64
	// SurgeSegments is how many connected road segments one surge
	// closes (a BFS patch around a random seed segment).
	SurgeSegments int
	// SurgeMeanDuration is the mean closure duration (exponential,
	// clamped to at least one minute).
	SurgeMeanDuration time.Duration

	// BreakdownsPerVehicleHour is the expected breakdown rate per
	// vehicle-hour (Poisson arrivals per vehicle).
	BreakdownsPerVehicleHour float64
	// BreakdownMeanDuration is the mean stall duration (exponential,
	// clamped to at least one minute).
	BreakdownMeanDuration time.Duration

	// SenseDropProb is the per-round probability that the dispatcher's
	// active-request view loses entries.
	SenseDropProb float64
	// SenseDropFrac is the fraction of active requests dropped when a
	// drop fault fires.
	SenseDropFrac float64
	// StaleSnapshotProb is the per-round probability that the
	// dispatcher sees the previous round's active-request view instead
	// of the current one.
	StaleSnapshotProb float64
	// PredictNoise is the relative stddev of multiplicative noise
	// applied to predicted-request maps (0 disables).
	PredictNoise float64

	// PanicProb is the per-round probability that Decide panics.
	PanicProb float64
	// LatencySpikeProb is the per-round probability of a modeled
	// decision-latency spike.
	LatencySpikeProb float64
	// LatencySpikeMax bounds the injected spike (uniform in (0, max]).
	LatencySpikeMax time.Duration
	// MalformedOrderProb is the per-round probability that the orders
	// batch is corrupted (bad vehicle, bad target, duplicate).
	MalformedOrderProb float64
}

// Off returns the disabled profile.
func Off() Profile { return Profile{Name: "off"} }

// LightProfile returns a gentle perturbation: occasional surges and
// sensing glitches, no dispatcher faults.
func LightProfile() Profile {
	return Profile{
		Name:                     "light",
		SurgesPerHour:            0.25,
		SurgeSegments:            4,
		SurgeMeanDuration:        45 * time.Minute,
		BreakdownsPerVehicleHour: 0.004,
		BreakdownMeanDuration:    10 * time.Minute,
		SenseDropProb:            0.05,
		SenseDropFrac:            0.2,
		StaleSnapshotProb:        0.02,
		PredictNoise:             0.1,
	}
}

// DefaultProfile returns the moderate profile the -chaos flag uses by
// default: every fault family active at rates a resilient dispatcher
// should absorb with bounded degradation.
func DefaultProfile() Profile {
	return Profile{
		Name:                     "default",
		SurgesPerHour:            0.5,
		SurgeSegments:            6,
		SurgeMeanDuration:        time.Hour,
		BreakdownsPerVehicleHour: 0.01,
		BreakdownMeanDuration:    20 * time.Minute,
		SenseDropProb:            0.10,
		SenseDropFrac:            0.3,
		StaleSnapshotProb:        0.05,
		PredictNoise:             0.2,
		PanicProb:                0.05,
		LatencySpikeProb:         0.05,
		LatencySpikeMax:          2 * time.Minute,
		MalformedOrderProb:       0.08,
	}
}

// HeavyProfile returns an aggressive profile for stress testing: the
// substrate misbehaves most rounds.
func HeavyProfile() Profile {
	return Profile{
		Name:                     "heavy",
		SurgesPerHour:            1.5,
		SurgeSegments:            10,
		SurgeMeanDuration:        2 * time.Hour,
		BreakdownsPerVehicleHour: 0.03,
		BreakdownMeanDuration:    40 * time.Minute,
		SenseDropProb:            0.25,
		SenseDropFrac:            0.5,
		StaleSnapshotProb:        0.15,
		PredictNoise:             0.5,
		PanicProb:                0.15,
		LatencySpikeProb:         0.15,
		LatencySpikeMax:          5 * time.Minute,
		MalformedOrderProb:       0.2,
	}
}

// ProfileNames lists the named profiles ProfileByName accepts, for flag
// help strings.
const ProfileNames = "off, light, default, or heavy"

// ProfileByName maps a -chaos flag value to its profile.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "", "off", "none":
		return Off(), nil
	case "light":
		return LightProfile(), nil
	case "default", "moderate":
		return DefaultProfile(), nil
	case "heavy":
		return HeavyProfile(), nil
	default:
		return Profile{}, fmt.Errorf("chaos: unknown profile %q (want %s)", name, ProfileNames)
	}
}

// Enabled reports whether the profile injects anything.
func (p Profile) Enabled() bool { return p.Name != "" && p.Name != "off" && p.Name != "none" }

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if !p.Enabled() {
		return nil
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"SurgesPerHour", p.SurgesPerHour},
		{"BreakdownsPerVehicleHour", p.BreakdownsPerVehicleHour},
		{"PredictNoise", p.PredictNoise},
	} {
		if c.v < 0 {
			return fmt.Errorf("chaos: %s must be non-negative, got %v", c.name, c.v)
		}
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"SenseDropProb", p.SenseDropProb},
		{"SenseDropFrac", p.SenseDropFrac},
		{"StaleSnapshotProb", p.StaleSnapshotProb},
		{"PanicProb", p.PanicProb},
		{"LatencySpikeProb", p.LatencySpikeProb},
		{"MalformedOrderProb", p.MalformedOrderProb},
	} {
		if c.v < 0 || c.v > 1 {
			return fmt.Errorf("chaos: %s must be in [0,1], got %v", c.name, c.v)
		}
	}
	if p.SurgesPerHour > 0 && (p.SurgeSegments <= 0 || p.SurgeMeanDuration <= 0) {
		return fmt.Errorf("chaos: surges need SurgeSegments > 0 and SurgeMeanDuration > 0")
	}
	if p.BreakdownsPerVehicleHour > 0 && p.BreakdownMeanDuration <= 0 {
		return fmt.Errorf("chaos: breakdowns need BreakdownMeanDuration > 0")
	}
	if p.LatencySpikeProb > 0 && p.LatencySpikeMax <= 0 {
		return fmt.Errorf("chaos: latency spikes need LatencySpikeMax > 0")
	}
	return nil
}
