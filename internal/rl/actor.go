package rl

import (
	"fmt"

	"mobirescue/internal/nn"
)

// Actor is the rollout half of the actor–learner split (internal/train):
// it decides epsilon-greedily against a frozen policy snapshot on its own
// seeded RNG stream and records every observed transition instead of
// learning from it. A central learner later absorbs the trajectory in a
// deterministic order, which is what makes parallel training
// byte-identical to serial.
//
// Actor implements Policy. It is not safe for concurrent use; run one
// actor per rollout. The snapshot network is only read (nn.Network.Forward
// is concurrency-safe), so any number of actors may share it.
type Actor struct {
	net     *nn.Network
	rng     *RNG
	epsilon float64
	nAction int
	scratch []float64 // private nn.ForwardInto buffer (one per actor)
	traj    []Transition
	reward  float64
}

var _ Policy = (*Actor)(nil)

// NewActor builds an actor over a frozen policy snapshot. epsilon is the
// exploration rate for the whole rollout (the learner's rate at snapshot
// time); seed drives this actor's private exploration stream.
func NewActor(net *nn.Network, epsilon float64, seed int64) (*Actor, error) {
	if net == nil {
		return nil, fmt.Errorf("rl: actor needs a policy network")
	}
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("rl: actor epsilon %v out of [0,1]", epsilon)
	}
	return &Actor{
		net:     net,
		rng:     NewRNG(seed),
		epsilon: epsilon,
		nAction: net.OutputSize(),
		scratch: net.NewScratch(),
	}, nil
}

// SelectAction implements Policy: epsilon-greedy over the frozen snapshot.
func (a *Actor) SelectAction(state []float64, mask []bool) int {
	if a.rng.Float64() < a.epsilon {
		return randValid(a.rng, a.nAction, mask)
	}
	return argmaxMasked(a.net.ForwardInto(state, a.scratch), mask)
}

// Greedy implements Policy: best action, no exploration.
func (a *Actor) Greedy(state []float64, mask []bool) int {
	return argmaxMasked(a.net.ForwardInto(state, a.scratch), mask)
}

// Observe implements Policy by appending to the recorded trajectory.
func (a *Actor) Observe(t Transition) {
	a.traj = append(a.traj, t)
	a.reward += t.Reward
}

// Trajectory returns the recorded transitions in observation order.
func (a *Actor) Trajectory() []Transition { return a.traj }

// TotalReward returns the sum of recorded shaped rewards.
func (a *Actor) TotalReward() float64 { return a.reward }
