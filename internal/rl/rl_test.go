package rl

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestReplayBasics(t *testing.T) {
	r := NewReplay(3)
	if r.Len() != 0 || r.Cap() != 3 {
		t.Fatalf("fresh buffer Len=%d Cap=%d", r.Len(), r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Add(Transition{Action: i})
	}
	if r.Len() != 3 {
		t.Errorf("Len after overflow = %d, want 3", r.Len())
	}
	// Oldest (0, 1) evicted: remaining actions are 2, 3, 4.
	seen := make(map[int]bool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		for _, tr := range r.Sample(rng, 4, nil) {
			seen[tr.Action] = true
		}
	}
	for _, a := range []int{2, 3, 4} {
		if !seen[a] {
			t.Errorf("action %d never sampled", a)
		}
	}
	for _, a := range []int{0, 1} {
		if seen[a] {
			t.Errorf("evicted action %d sampled", a)
		}
	}
}

func TestReplayEmptySample(t *testing.T) {
	r := NewReplay(4)
	rng := rand.New(rand.NewSource(1))
	if got := r.Sample(rng, 2, nil); got != nil {
		t.Errorf("empty sample = %v", got)
	}
	r.Add(Transition{})
	if got := r.Sample(rng, 0, nil); got != nil {
		t.Errorf("n=0 sample = %v", got)
	}
}

func TestReplayPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewReplay(0)
}

func TestArgmaxMasked(t *testing.T) {
	vals := []float64{1, 5, 3}
	tests := []struct {
		name string
		mask []bool
		want int
	}{
		{"nil mask", nil, 1},
		{"best masked out", []bool{true, false, true}, 2},
		{"single valid", []bool{true, false, false}, 0},
		{"none valid", []bool{false, false, false}, -1},
	}
	for _, tt := range tests {
		if got := argmaxMasked(vals, tt.mask); got != tt.want {
			t.Errorf("%s: argmaxMasked = %d, want %d", tt.name, got, tt.want)
		}
	}
	if got := maxMasked(vals, nil); got != 5 {
		t.Errorf("maxMasked = %v", got)
	}
	if got := maxMasked(vals, []bool{false, false, false}); got != 0 {
		t.Errorf("maxMasked none valid = %v", got)
	}
}

func TestRandValidRespectsMask(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mask := []bool{false, true, false, true}
	for i := 0; i < 100; i++ {
		a := randValid(rng, 4, mask)
		if a != 1 && a != 3 {
			t.Fatalf("invalid action %d selected", a)
		}
	}
	if a := randValid(rng, 4, []bool{false, false, false, false}); a != -1 {
		t.Errorf("no-valid should return -1, got %d", a)
	}
	// nil mask: uniform over all.
	seen := map[int]bool{}
	for i := 0; i < 100; i++ {
		seen[randValid(rng, 3, nil)] = true
	}
	if len(seen) != 3 {
		t.Errorf("nil mask should reach all actions, saw %v", seen)
	}
}

func TestSoftmaxMasked(t *testing.T) {
	logits := []float64{1, 2, 3}
	p := softmaxMasked(logits, nil)
	sum := 0.0
	for i := 1; i < len(p); i++ {
		if p[i] <= p[i-1] {
			t.Error("softmax should be increasing with logits")
		}
	}
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	// Masked entries get zero probability.
	pm := softmaxMasked(logits, []bool{true, false, true})
	if pm[1] != 0 {
		t.Errorf("masked prob = %v", pm[1])
	}
	if math.Abs(pm[0]+pm[2]-1) > 1e-12 {
		t.Errorf("masked probs sum to %v", pm[0]+pm[2])
	}
	// All masked: all zeros.
	for _, v := range softmaxMasked(logits, []bool{false, false, false}) {
		if v != 0 {
			t.Error("fully masked softmax should be zeros")
		}
	}
	// Large logits must not overflow.
	big := softmaxMasked([]float64{1000, 1001}, nil)
	if math.IsNaN(big[0]) || math.IsNaN(big[1]) {
		t.Error("softmax overflowed")
	}
}

// chainEnv is a 1-D corridor: start at cell 0, reward 1 for reaching the
// right end, -0.01 per step, episode capped by the caller. Action 0 =
// left, 1 = right.
type chainEnv struct {
	n   int
	pos int
}

func (e *chainEnv) Reset() []float64 { e.pos = 0; return e.state() }
func (e *chainEnv) state() []float64 {
	s := make([]float64, e.n)
	s[e.pos] = 1
	return s
}
func (e *chainEnv) Step(a int) ([]float64, float64, bool) {
	if a == 1 {
		e.pos++
	} else if e.pos > 0 {
		e.pos--
	}
	if e.pos == e.n-1 {
		return e.state(), 1, true
	}
	return e.state(), -0.01, false
}
func (e *chainEnv) StateSize() int  { return e.n }
func (e *chainEnv) NumActions() int { return 2 }

func TestDQNConfigValidation(t *testing.T) {
	cfg := DefaultDQNConfig()
	if _, err := NewDQN(0, 2, cfg); err == nil {
		t.Error("zero state size should error")
	}
	if _, err := NewDQN(2, 0, cfg); err == nil {
		t.Error("zero actions should error")
	}
	bad := cfg
	bad.Gamma = 1.0
	if _, err := NewDQN(2, 2, bad); err == nil {
		t.Error("gamma=1 should error")
	}
	bad = cfg
	bad.BufferSize = 1
	if _, err := NewDQN(2, 2, bad); err == nil {
		t.Error("buffer smaller than batch should error")
	}
}

func TestDQNEpsilonDecay(t *testing.T) {
	cfg := DefaultDQNConfig()
	cfg.EpsilonStart, cfg.EpsilonEnd, cfg.EpsilonDecaySteps = 1.0, 0.1, 100
	d, err := NewDQN(2, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Epsilon(); got != 1.0 {
		t.Errorf("initial epsilon = %v", got)
	}
	d.steps = 50
	if got := d.Epsilon(); math.Abs(got-0.55) > 1e-12 {
		t.Errorf("mid epsilon = %v, want 0.55", got)
	}
	d.steps = 1000
	if got := d.Epsilon(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("final epsilon = %v", got)
	}
}

func TestDQNSolvesChain(t *testing.T) {
	env := &chainEnv{n: 6}
	cfg := DefaultDQNConfig()
	cfg.Hidden = []int{32}
	cfg.EpsilonDecaySteps = 1500
	cfg.LearnStart = 100
	cfg.TargetSync = 100
	cfg.Seed = 7
	d, err := NewDQN(env.StateSize(), env.NumActions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	returns := d.TrainEpisodes(env, 120, 100)
	// Later episodes should beat early ones.
	early := mean(returns[:20])
	late := mean(returns[len(returns)-20:])
	if late <= early {
		t.Errorf("no learning: early=%v late=%v", early, late)
	}
	// The greedy policy should walk straight right from every cell.
	for pos := 0; pos < env.n-1; pos++ {
		env.pos = pos
		if a := d.Greedy(env.state(), nil); a != 1 {
			t.Errorf("greedy action at cell %d = %d, want 1 (right)", pos, a)
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// maskedEnv wraps chainEnv forbidding action 0 (left) always.
type maskedEnv struct{ chainEnv }

func (e *maskedEnv) ValidActions() []bool { return []bool{false, true} }

func TestDQNRespectsMask(t *testing.T) {
	env := &maskedEnv{chainEnv{n: 4}}
	cfg := DefaultDQNConfig()
	cfg.Seed = 3
	d, err := NewDQN(env.StateSize(), env.NumActions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := env.Reset()
	for i := 0; i < 200; i++ {
		if a := d.SelectAction(state, env.ValidActions()); a != 1 {
			t.Fatalf("masked action %d selected", a)
		}
	}
}

func TestDQNSaveLoadPolicy(t *testing.T) {
	cfg := DefaultDQNConfig()
	d, err := NewDQN(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDQN(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	state := []float64{0.1, 0.2, 0.3}
	qa, qb := d.QValues(state), d2.QValues(state)
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("Q values differ after load: %v vs %v", qa, qb)
		}
	}
	// Shape mismatch rejected.
	var buf2 bytes.Buffer
	if err := d.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	d3, err := NewDQN(4, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d3.LoadPolicy(&buf2); err == nil {
		t.Error("shape mismatch should error")
	}
}

func TestReinforceConfigValidation(t *testing.T) {
	cfg := DefaultReinforceConfig()
	if _, err := NewReinforce(0, 2, cfg); err == nil {
		t.Error("zero state size should error")
	}
	bad := cfg
	bad.Gamma = 1
	if _, err := NewReinforce(2, 2, bad); err == nil {
		t.Error("gamma=1 should error")
	}
}

// banditEnv: single state, 3 arms with different rewards, one-step
// episodes. The policy should concentrate on the best arm.
type banditEnv struct{ rewards []float64 }

func (e *banditEnv) Reset() []float64 { return []float64{1} }
func (e *banditEnv) Step(a int) ([]float64, float64, bool) {
	return []float64{1}, e.rewards[a], true
}
func (e *banditEnv) StateSize() int  { return 1 }
func (e *banditEnv) NumActions() int { return len(e.rewards) }

func TestReinforceSolvesBandit(t *testing.T) {
	env := &banditEnv{rewards: []float64{0.1, 1.0, 0.3}}
	cfg := DefaultReinforceConfig()
	cfg.Seed = 11
	r, err := NewReinforce(env.StateSize(), env.NumActions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.TrainEpisodes(env, 800, 10)
	if a := r.Greedy([]float64{1}, nil); a != 1 {
		t.Errorf("greedy arm = %d, want 1", a)
	}
	// The best arm should dominate the sampled distribution too.
	counts := make([]int, 3)
	for i := 0; i < 300; i++ {
		counts[r.SelectAction([]float64{1}, nil)]++
	}
	if counts[1] < 200 {
		t.Errorf("arm distribution %v should favor arm 1", counts)
	}
}

func TestReinforceSolvesChain(t *testing.T) {
	env := &chainEnv{n: 5}
	cfg := DefaultReinforceConfig()
	cfg.Seed = 13
	r, err := NewReinforce(env.StateSize(), env.NumActions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	returns := r.TrainEpisodes(env, 400, 60)
	early := mean(returns[:40])
	late := mean(returns[len(returns)-40:])
	if late <= early {
		t.Errorf("no learning: early=%v late=%v", early, late)
	}
}

func TestReinforceRespectsMask(t *testing.T) {
	env := &maskedEnv{chainEnv{n: 4}}
	cfg := DefaultReinforceConfig()
	r, err := NewReinforce(env.StateSize(), env.NumActions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := env.Reset()
	for i := 0; i < 200; i++ {
		if a := r.SelectAction(state, env.ValidActions()); a != 1 {
			t.Fatalf("masked action %d sampled", a)
		}
	}
}

func BenchmarkDQNInference(b *testing.B) {
	cfg := DefaultDQNConfig()
	d, err := NewDQN(128, 16, cfg)
	if err != nil {
		b.Fatal(err)
	}
	state := make([]float64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Greedy(state, nil)
	}
}

func BenchmarkDQNLearnStep(b *testing.B) {
	env := &chainEnv{n: 8}
	cfg := DefaultDQNConfig()
	cfg.LearnStart = 10
	d, err := NewDQN(env.StateSize(), env.NumActions(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	state := env.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := d.SelectAction(state, nil)
		next, reward, done := env.Step(a)
		d.Observe(Transition{State: state, Action: a, Reward: reward, NextState: next, Done: done})
		state = next
		if done {
			state = env.Reset()
		}
	}
}

func TestReinforceUpdateTrajectoryExternal(t *testing.T) {
	// Drive the bandit with an externally collected trajectory, the way
	// the dispatch simulator feeds the policy-gradient learner.
	env := &banditEnv{rewards: []float64{0.0, 1.0}}
	cfg := DefaultReinforceConfig()
	cfg.Seed = 21
	r, err := NewReinforce(env.StateSize(), env.NumActions(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := []float64{1}
	for ep := 0; ep < 500; ep++ {
		a := r.SelectAction(state, nil)
		_, reward, _ := env.Step(a)
		r.UpdateTrajectory([]Step{{State: state, Action: a, Reward: reward}})
	}
	if got := r.Greedy(state, nil); got != 1 {
		t.Errorf("externally trained greedy arm = %d, want 1", got)
	}
	// Empty trajectories are a no-op.
	r.UpdateTrajectory(nil)
}
