// Package rl provides the reinforcement-learning machinery behind
// MobiRescue's dispatcher (Section IV-C): an episodic MDP interface, a
// uniform replay buffer, a DQN agent (epsilon-greedy exploration, target
// network, Adam), and a REINFORCE-with-baseline policy-gradient agent.
// The DNN function approximators come from internal/nn, mirroring the
// paper's use of a Pensieve-style deep network [24].
package rl

import (
	"fmt"
)

// Environment is an episodic Markov decision process with a fixed
// discrete action space.
type Environment interface {
	// Reset starts a new episode and returns the initial state.
	Reset() []float64
	// Step applies an action, returning the next state, the reward, and
	// whether the episode ended.
	Step(action int) (next []float64, reward float64, done bool)
	// StateSize is the state vector length.
	StateSize() int
	// NumActions is the size of the discrete action space.
	NumActions() int
}

// Policy is the decision-and-feedback surface a dispatcher drives: pick
// actions for states and observe the resulting transitions. The central
// learner (*DQN) implements it by learning online; *Actor implements it
// by deciding against a frozen policy snapshot and recording the
// trajectory for a central learner to absorb later (the actor–learner
// split in internal/train).
type Policy interface {
	// SelectAction picks an action for state under the optional validity
	// mask, possibly exploring. It returns -1 when no action is valid.
	SelectAction(state []float64, mask []bool) int
	// Greedy picks the best action without exploration (-1 when none is
	// valid).
	Greedy(state []float64, mask []bool) int
	// Observe records one transition.
	Observe(t Transition)
}

// IntSource yields bounded uniform integers; *math/rand.Rand and *RNG
// both satisfy it.
type IntSource interface {
	Intn(n int) int
}

// ActionMasker is an optional Environment extension restricting which
// actions are valid in the current state (e.g. unreachable destination
// zones). A nil mask means every action is valid.
type ActionMasker interface {
	ValidActions() []bool
}

// Transition is one (s, a, r, s', done) experience.
type Transition struct {
	State     []float64
	Action    int
	Reward    float64
	NextState []float64
	Done      bool
	NextMask  []bool // valid actions in NextState; nil = all
}

// Replay is a fixed-capacity ring buffer of transitions with uniform
// sampling. The zero value is not usable; construct with NewReplay.
type Replay struct {
	buf  []Transition
	next int
	full bool
}

// NewReplay returns a replay buffer holding up to capacity transitions.
// It panics when capacity is not positive, which indicates programmer
// error.
func NewReplay(capacity int) *Replay {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: replay capacity %d must be positive", capacity))
	}
	return &Replay{buf: make([]Transition, capacity)}
}

// Len returns the number of stored transitions.
func (r *Replay) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Cap returns the buffer capacity.
func (r *Replay) Cap() int { return len(r.buf) }

// Add stores a transition, evicting the oldest when full.
func (r *Replay) Add(t Transition) {
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Sample draws n transitions uniformly with replacement into dst (reused
// when cap allows) and returns it. It returns nil when the buffer is
// empty.
func (r *Replay) Sample(rng IntSource, n int, dst []Transition) []Transition {
	sz := r.Len()
	if sz == 0 || n <= 0 {
		return nil
	}
	if cap(dst) < n {
		dst = make([]Transition, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = r.buf[rng.Intn(sz)]
	}
	return dst
}

// argmaxMasked returns the index of the largest value among valid
// entries. A nil mask admits all. It returns -1 when nothing is valid.
func argmaxMasked(vals []float64, mask []bool) int {
	best := -1
	for i, v := range vals {
		if mask != nil && !mask[i] {
			continue
		}
		if best == -1 || v > vals[best] {
			best = i
		}
	}
	return best
}

// maxMasked returns the largest valid value, or 0 when nothing is valid.
func maxMasked(vals []float64, mask []bool) float64 {
	i := argmaxMasked(vals, mask)
	if i < 0 {
		return 0
	}
	return vals[i]
}

// randValid picks a uniformly random valid action, or -1 when none is.
func randValid(rng IntSource, n int, mask []bool) int {
	if mask == nil {
		return rng.Intn(n)
	}
	var valid []int
	for i := 0; i < n && i < len(mask); i++ {
		if mask[i] {
			valid = append(valid, i)
		}
	}
	if len(valid) == 0 {
		return -1
	}
	return valid[rng.Intn(len(valid))]
}

// maskOf returns env's action mask when it implements ActionMasker.
func maskOf(env Environment) []bool {
	if m, ok := env.(ActionMasker); ok {
		return m.ValidActions()
	}
	return nil
}
