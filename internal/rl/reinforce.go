package rl

import (
	"fmt"
	"math"
	"math/rand"

	"mobirescue/internal/nn"
)

// ReinforceConfig tunes the policy-gradient agent.
type ReinforceConfig struct {
	// Hidden lists hidden-layer sizes for policy and baseline networks.
	Hidden []int
	// Gamma is the discount factor.
	Gamma float64
	// PolicyLR and BaselineLR are Adam learning rates.
	PolicyLR, BaselineLR float64
	// EntropyBonus weights an entropy regularizer encouraging
	// exploration.
	EntropyBonus float64
	// GradClip bounds gradient norms (0 disables).
	GradClip float64
	// Seed drives sampling and initialization.
	Seed int64
}

// DefaultReinforceConfig returns standard hyperparameters.
func DefaultReinforceConfig() ReinforceConfig {
	return ReinforceConfig{
		Hidden:       []int{64},
		Gamma:        0.95,
		PolicyLR:     5e-3,
		BaselineLR:   1e-2,
		EntropyBonus: 1e-2,
		GradClip:     5,
		Seed:         1,
	}
}

// Reinforce is a REINFORCE agent with a learned value baseline. It is not
// safe for concurrent use.
type Reinforce struct {
	cfg      ReinforceConfig
	policy   *nn.Network // outputs logits
	baseline *nn.Network // outputs V(s)
	pOpt     *nn.Adam
	bOpt     *nn.Adam
	pGrad    []float64
	bGrad    []float64
	rng      *rand.Rand
	nAction  int
}

// NewReinforce builds a policy-gradient agent.
func NewReinforce(stateSize, numActions int, cfg ReinforceConfig) (*Reinforce, error) {
	if stateSize <= 0 || numActions <= 0 {
		return nil, fmt.Errorf("rl: invalid sizes state=%d actions=%d", stateSize, numActions)
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("rl: gamma %v out of [0,1)", cfg.Gamma)
	}
	pSizes := append([]int{stateSize}, cfg.Hidden...)
	pSizes = append(pSizes, numActions)
	policy, err := nn.New(cfg.Seed, pSizes, nn.ActTanh, nn.ActLinear)
	if err != nil {
		return nil, err
	}
	bSizes := append([]int{stateSize}, cfg.Hidden...)
	bSizes = append(bSizes, 1)
	baseline, err := nn.New(cfg.Seed+1, bSizes, nn.ActTanh, nn.ActLinear)
	if err != nil {
		return nil, err
	}
	return &Reinforce{
		cfg:      cfg,
		policy:   policy,
		baseline: baseline,
		pOpt:     nn.NewAdam(cfg.PolicyLR),
		bOpt:     nn.NewAdam(cfg.BaselineLR),
		pGrad:    make([]float64, policy.NumParams()),
		bGrad:    make([]float64, baseline.NumParams()),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nAction:  numActions,
	}, nil
}

// softmaxMasked returns masked softmax probabilities over logits.
func softmaxMasked(logits []float64, mask []bool) []float64 {
	probs := make([]float64, len(logits))
	maxL := math.Inf(-1)
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		if l > maxL {
			maxL = l
		}
	}
	if math.IsInf(maxL, -1) {
		return probs // nothing valid
	}
	sum := 0.0
	for i, l := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		probs[i] = math.Exp(l - maxL)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// SelectAction samples from the masked policy distribution, returning -1
// when no action is valid.
func (r *Reinforce) SelectAction(state []float64, mask []bool) int {
	probs := softmaxMasked(r.policy.Forward(state), mask)
	x := r.rng.Float64()
	for i, p := range probs {
		x -= p
		if p > 0 && x <= 0 {
			return i
		}
	}
	// Numerical leftovers: return the last valid action.
	for i := len(probs) - 1; i >= 0; i-- {
		if probs[i] > 0 {
			return i
		}
	}
	return -1
}

// Greedy returns the most probable action.
func (r *Reinforce) Greedy(state []float64, mask []bool) int {
	return argmaxMasked(r.policy.Forward(state), mask)
}

// Step is one step of an episode trajectory. Callers that drive their
// own environment loop (e.g. the dispatch simulator) collect Steps and
// apply them with UpdateTrajectory.
type Step struct {
	State  []float64
	Action int
	Reward float64
	Mask   []bool
}

// TrainEpisodes runs env for the given episodes, updating the policy
// after each one, and returns per-episode returns. maxSteps bounds
// episode length (0 means 10000).
func (r *Reinforce) TrainEpisodes(env Environment, episodes, maxSteps int) []float64 {
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	returns := make([]float64, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		state := env.Reset()
		var traj []Step
		total := 0.0
		for st := 0; st < maxSteps; st++ {
			mask := maskOf(env)
			a := r.SelectAction(state, mask)
			if a < 0 {
				break
			}
			next, reward, done := env.Step(a)
			traj = append(traj, Step{State: state, Action: a, Reward: reward, Mask: mask})
			total += reward
			state = next
			if done {
				break
			}
		}
		r.UpdateTrajectory(traj)
		returns = append(returns, total)
	}
	return returns
}

// UpdateTrajectory applies one REINFORCE-with-baseline gradient step
// from an externally collected trajectory.
func (r *Reinforce) UpdateTrajectory(traj []Step) {
	if len(traj) == 0 {
		return
	}
	// Discounted returns-to-go.
	g := make([]float64, len(traj))
	run := 0.0
	for i := len(traj) - 1; i >= 0; i-- {
		run = traj[i].Reward + r.cfg.Gamma*run
		g[i] = run
	}
	nn.Zero(r.pGrad)
	nn.Zero(r.bGrad)
	for i, s := range traj {
		v := r.baseline.Forward(s.State)[0]
		adv := g[i] - v

		// Baseline regression toward the return.
		bdOut := []float64{2 * (v - g[i])}
		r.baseline.Gradient(s.State, bdOut, r.bGrad)

		// Policy gradient: d(-adv * log pi(a|s))/dlogits = adv*(p - onehot),
		// plus entropy bonus d(-H)/dlogits = p*(log p + H).
		logits := r.policy.Forward(s.State)
		probs := softmaxMasked(logits, s.Mask)
		ent := 0.0
		for _, p := range probs {
			if p > 0 {
				ent -= p * math.Log(p)
			}
		}
		dOut := make([]float64, len(logits))
		for j := range dOut {
			if probs[j] == 0 && j != s.Action {
				continue
			}
			onehot := 0.0
			if j == s.Action {
				onehot = 1
			}
			dOut[j] = adv * (probs[j] - onehot)
			if probs[j] > 0 {
				dOut[j] += r.cfg.EntropyBonus * probs[j] * (math.Log(probs[j]) + ent)
			}
		}
		r.policy.Gradient(s.State, dOut, r.pGrad)
	}
	inv := 1.0 / float64(len(traj))
	nn.Scale(r.pGrad, inv)
	nn.Scale(r.bGrad, inv)
	nn.ClipGradient(r.pGrad, r.cfg.GradClip)
	nn.ClipGradient(r.bGrad, r.cfg.GradClip)
	r.pOpt.Step(r.policy.Params(), r.pGrad)
	r.bOpt.Step(r.baseline.Params(), r.bGrad)
}
