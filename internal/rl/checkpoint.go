package rl

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"mobirescue/internal/nn"
)

// CheckpointVersion is the current learner-checkpoint payload format.
// Bump it whenever dqnCheckpointWire changes incompatibly; old files are
// then rejected with *nn.VersionError instead of being misdecoded.
const CheckpointVersion = 1

// dqnCheckpointWire is the gob payload inside the nn checkpoint envelope.
// Everything that determines the learner's decisions is here — online and
// target networks, optimizer moments, step counters, and the RNG cursor —
// so a restored agent selects exactly the actions the saved one would
// have. The replay buffer is deliberately excluded: it is tens of
// thousands of state vectors, and warm-starting refills it from fresh
// experience (so resumed *learning* samples new batches rather than
// replaying the pre-crash buffer).
type dqnCheckpointWire struct {
	Online       []byte // nn.Network gob (Save format)
	TargetParams []float64
	AdamM, AdamV []float64
	AdamT        int
	Steps        int
	LearnN       int
	RNGState     uint64
}

// SaveCheckpoint writes the learner's full training state (networks,
// optimizer, counters, RNG cursor) to w inside a versioned, checksummed
// envelope (see internal/nn persist.go). episodes is recorded in the
// header so tools and warm-starting callers can see how much training the
// checkpoint represents without decoding the payload.
//
// Identical learner states always serialize to identical bytes, which is
// the contract the parallel-training determinism tests pin.
func (d *DQN) SaveCheckpoint(w io.Writer, episodes uint64) error {
	var net bytes.Buffer
	if err := d.online.Save(&net); err != nil {
		return err
	}
	m, v, t := d.opt.State()
	wire := dqnCheckpointWire{
		Online:       net.Bytes(),
		TargetParams: append([]float64(nil), d.target.Params()...),
		AdamM:        m,
		AdamV:        v,
		AdamT:        t,
		Steps:        d.steps,
		LearnN:       d.learnN,
		RNGState:     d.rng.State(),
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(wire); err != nil {
		return fmt.Errorf("rl: encoding checkpoint: %w", err)
	}
	return nn.WriteEnvelope(w, nn.EnvelopeHeader{
		Version:  CheckpointVersion,
		Episodes: episodes,
	}, payload.Bytes())
}

// LoadCheckpoint restores a learner state written by SaveCheckpoint,
// returning the episode count recorded in the header. Corrupt, truncated,
// wrong-version, or shape-mismatched files are rejected with an error —
// the typed envelope errors from internal/nn where applicable — and the
// agent is left untouched: all validation happens before any field is
// assigned, so a failed load can never leave a partially restored
// network.
func (d *DQN) LoadCheckpoint(r io.Reader) (episodes uint64, err error) {
	hdr, payload, err := nn.ReadEnvelope(r, CheckpointVersion)
	if err != nil {
		return 0, err
	}
	var wire dqnCheckpointWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return 0, fmt.Errorf("rl: decoding checkpoint: %w", err)
	}
	online, err := nn.Load(bytes.NewReader(wire.Online))
	if err != nil {
		return 0, err
	}
	if online.InputSize() != d.online.InputSize() || online.OutputSize() != d.online.OutputSize() {
		return 0, fmt.Errorf("rl: checkpoint network shape %dx%d does not match agent %dx%d",
			online.InputSize(), online.OutputSize(), d.online.InputSize(), d.online.OutputSize())
	}
	if len(wire.TargetParams) != online.NumParams() {
		return 0, fmt.Errorf("rl: checkpoint target has %d params, want %d",
			len(wire.TargetParams), online.NumParams())
	}
	if len(wire.AdamM) != len(wire.AdamV) {
		return 0, fmt.Errorf("rl: checkpoint optimizer moments disagree: %d m, %d v",
			len(wire.AdamM), len(wire.AdamV))
	}
	if len(wire.AdamM) != 0 && len(wire.AdamM) != online.NumParams() {
		return 0, fmt.Errorf("rl: checkpoint optimizer has %d moments, want %d",
			len(wire.AdamM), online.NumParams())
	}
	if wire.Steps < 0 || wire.LearnN < 0 || wire.AdamT < 0 {
		return 0, fmt.Errorf("rl: checkpoint counters negative (steps=%d learn=%d adamT=%d)",
			wire.Steps, wire.LearnN, wire.AdamT)
	}
	target := online.Clone()
	target.SetParams(wire.TargetParams)
	opt := nn.NewAdam(d.cfg.LR)
	if err := opt.SetState(wire.AdamM, wire.AdamV, wire.AdamT); err != nil {
		return 0, err
	}
	// All validation passed; commit atomically.
	d.online = online
	d.target = target
	d.opt = opt
	d.grad = make([]float64, online.NumParams())
	d.scratch = online.NewScratch()
	d.steps = wire.Steps
	d.learnN = wire.LearnN
	d.rng.SetState(wire.RNGState)
	return hdr.Episodes, nil
}
