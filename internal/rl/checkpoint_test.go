package rl

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"mobirescue/internal/nn"
)

// smallDQNConfig is a tiny agent configuration that starts learning
// almost immediately, so a few synthetic transitions exercise the full
// train/optimize/target-sync state.
func smallDQNConfig(seed int64) DQNConfig {
	cfg := DefaultDQNConfig()
	cfg.Hidden = []int{8}
	cfg.BufferSize = 64
	cfg.BatchSize = 4
	cfg.LearnStart = 4
	cfg.TargetSync = 3
	cfg.EpsilonDecaySteps = 20
	cfg.Seed = seed
	return cfg
}

// trainedDQN builds a small agent and feeds it enough synthetic
// transitions that the optimizer, target network, RNG, and counters all
// leave their initial state.
func trainedDQN(t testing.TB, seed int64) *DQN {
	t.Helper()
	d, err := NewDQN(3, 2, smallDQNConfig(seed))
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	for i := 0; i < 25; i++ {
		s := []float64{float64(i % 3), float64(i % 5), 0.5}
		a := d.SelectAction(s, nil)
		d.Observe(Transition{
			State:  s,
			Action: a,
			Reward: float64(i%4) - 1.5,
			NextState: []float64{float64((i + 1) % 3), float64((i + 1) % 5), 0.5},
			Done:   i%8 == 7,
		})
	}
	return d
}

// checkpointOf serializes an agent's state for byte comparison.
func checkpointOf(t testing.TB, d *DQN, episodes uint64) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.SaveCheckpoint(&buf, episodes); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	return buf.Bytes()
}

func TestDQNCheckpointRoundTrip(t *testing.T) {
	src := trainedDQN(t, 11)
	raw := checkpointOf(t, src, 7)

	dst, err := NewDQN(3, 2, smallDQNConfig(99)) // different seed: state must come from the file
	if err != nil {
		t.Fatal(err)
	}
	episodes, err := dst.LoadCheckpoint(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if episodes != 7 {
		t.Errorf("episodes = %d, want 7", episodes)
	}
	// The restored agent must re-serialize to the identical bytes:
	// networks, optimizer moments, counters, and RNG cursor all match.
	if got := checkpointOf(t, dst, 7); !bytes.Equal(got, raw) {
		t.Error("restored agent serializes differently from the source checkpoint")
	}
	// And behave identically from here on: same networks, same epsilon,
	// same RNG cursor mean the same action stream. (Learning itself is
	// not compared — the replay buffer is deliberately excluded from
	// checkpoints, so a warm-started agent resamples from fresh
	// experience.)
	if src.Epsilon() != dst.Epsilon() {
		t.Errorf("epsilon %v vs %v after restore", src.Epsilon(), dst.Epsilon())
	}
	for i := 0; i < 20; i++ {
		s := []float64{float64(i), 0.25, -0.5}
		if as, ad := src.SelectAction(s, nil), dst.SelectAction(s, nil); as != ad {
			t.Fatalf("step %d: actions diverge (%d vs %d)", i, as, ad)
		}
		if gs, gd := src.Greedy(s, nil), dst.Greedy(s, nil); gs != gd {
			t.Fatalf("step %d: greedy actions diverge (%d vs %d)", i, gs, gd)
		}
	}
}

// TestLoadCheckpointCorruption is the corruption table at the learner
// level (ISSUE satellite 3): truncated, bit-flipped, wrong-version,
// wrong-checksum, and shape-mismatched checkpoints must all be rejected
// with typed errors, must never panic, and must never leave a partially
// loaded network — the agent's serialized state is bit-for-bit unchanged
// after every failed load.
func TestLoadCheckpointCorruption(t *testing.T) {
	valid := checkpointOf(t, trainedDQN(t, 11), 3)

	otherShape, err := NewDQN(5, 4, smallDQNConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	shapeMismatch := checkpointOf(t, otherShape, 3)

	garbagePayload := func() []byte {
		var buf bytes.Buffer
		if err := nn.WriteEnvelope(&buf, nn.EnvelopeHeader{Version: CheckpointVersion, Episodes: 1},
			[]byte("not a gob stream at all")); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := []struct {
		name    string
		data    []byte
		want    error  // typed sentinel when applicable
		wantSub string // error-substring fallback
	}{
		{name: "empty file", data: nil, want: nn.ErrEnvelopeTruncated},
		{name: "truncated header", data: valid[:12], want: nn.ErrEnvelopeTruncated},
		{name: "truncated payload", data: valid[:len(valid)-7], want: nn.ErrEnvelopeTruncated},
		{name: "bad magic", data: flipBit(valid, 1), want: nn.ErrEnvelopeMagic},
		{name: "wrong version", data: putU32(valid, 4, CheckpointVersion+1), want: nn.ErrEnvelopeVersion},
		{name: "payload bit flip", data: flipBit(valid, 40), want: nn.ErrEnvelopeChecksum},
		{name: "checksum bit flip", data: flipBit(valid, 25), want: nn.ErrEnvelopeChecksum},
		{name: "oversized length", data: putU64(valid, 16, nn.MaxEnvelopePayload+1), want: nn.ErrEnvelopeTooLarge},
		{name: "valid envelope, garbage gob", data: garbagePayload, wantSub: "decoding checkpoint"},
		{name: "network shape mismatch", data: shapeMismatch, wantSub: "shape"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := trainedDQN(t, 42)
			before := checkpointOf(t, d, 0)
			episodes, err := d.LoadCheckpoint(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("corrupt checkpoint loaded without error")
			}
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want substring %q", err, tc.wantSub)
			}
			if episodes != 0 {
				t.Errorf("episodes = %d on failure, want 0", episodes)
			}
			if after := checkpointOf(t, d, 0); !bytes.Equal(before, after) {
				t.Error("failed load mutated the agent")
			}
		})
	}
}

func flipBit(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x01
	return out
}

func putU32(b []byte, off int, v uint32) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(out[off:], v)
	return out
}

func putU64(b []byte, off int, v uint64) []byte {
	out := append([]byte(nil), b...)
	binary.LittleEndian.PutUint64(out[off:], v)
	return out
}

// FuzzLoadCheckpoint throws arbitrary bytes at the checkpoint loader:
// whatever the input, LoadCheckpoint must return an error or succeed —
// never panic, never OOM on declared lengths, and never leave the agent
// half-restored after an error.
func FuzzLoadCheckpoint(f *testing.F) {
	valid := checkpointOf(f, trainedDQN(f, 11), 5)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("MRCK"))
	f.Add(valid[:20])
	f.Add(flipBit(valid, 33))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := NewDQN(3, 2, smallDQNConfig(7))
		if err != nil {
			t.Fatal(err)
		}
		before := checkpointOf(t, d, 0)
		if _, err := d.LoadCheckpoint(bytes.NewReader(data)); err != nil {
			if after := checkpointOf(t, d, 0); !bytes.Equal(before, after) {
				t.Fatal("failed load mutated the agent")
			}
		}
	})
}

func TestRNGStateRoundTrip(t *testing.T) {
	a := NewRNG(123)
	for i := 0; i < 10; i++ {
		a.Uint64()
	}
	state := a.State()
	b := NewRNG(0)
	b.SetState(state)
	for i := 0; i < 20; i++ {
		if got, want := b.Uint64(), a.Uint64(); got != want {
			t.Fatalf("restored RNG diverged at draw %d", i)
		}
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn(5) hit %d distinct values over 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestDeriveSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for round := 0; round < 8; round++ {
		for actor := 0; actor < 8; actor++ {
			s := DeriveSeed(1, round, actor)
			if seen[s] {
				t.Fatalf("DeriveSeed collision at round %d actor %d", round, actor)
			}
			seen[s] = true
		}
	}
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Error("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(2, 2, 3) {
		t.Error("DeriveSeed ignores base seed")
	}
}

func TestActorRecordsTrajectory(t *testing.T) {
	net, err := nn.New(3, []int{3, 8, 2}, nn.ActReLU, nn.ActLinear)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewActor(net, 0.5, 99)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < 6; i++ {
		s := []float64{float64(i), 1, -1}
		act := a.SelectAction(s, nil)
		if act < 0 || act >= 2 {
			t.Fatalf("action %d out of range", act)
		}
		r := float64(i)
		total += r
		a.Observe(Transition{State: s, Action: act, Reward: r, NextState: s, Done: i == 5})
	}
	traj := a.Trajectory()
	if len(traj) != 6 {
		t.Fatalf("trajectory has %d transitions, want 6", len(traj))
	}
	if !traj[5].Done {
		t.Error("final transition should be terminal")
	}
	if a.TotalReward() != total {
		t.Errorf("TotalReward = %v, want %v", a.TotalReward(), total)
	}
	// Greedy must not record.
	a.Greedy([]float64{0, 0, 0}, nil)
	if len(a.Trajectory()) != 6 {
		t.Error("Greedy should not append to the trajectory")
	}
}

func TestActorValidation(t *testing.T) {
	net, err := nn.New(1, []int{2, 2}, nn.ActLinear, nn.ActLinear)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewActor(nil, 0.1, 1); err == nil {
		t.Error("nil network should error")
	}
	if _, err := NewActor(net, -0.1, 1); err == nil {
		t.Error("negative epsilon should error")
	}
	if _, err := NewActor(net, 1.1, 1); err == nil {
		t.Error("epsilon > 1 should error")
	}
}

// TestActorMatchesDQNExploration pins the shared exploration contract:
// an Actor holding a snapshot of a DQN's online network, the same
// epsilon, and the same RNG stream selects exactly the actions the DQN
// itself would — the property the parallel trainer's determinism rests
// on.
func TestActorMatchesDQNExploration(t *testing.T) {
	cfg := smallDQNConfig(5)
	cfg.EpsilonStart = 0.3 // exercise both the explore and exploit branches
	d, err := NewDQN(3, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewActor(d.SnapshotPolicy(), d.Epsilon(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Both draw from splitmix64 streams seeded identically, the DQN never
	// observes (so its epsilon stays at the snapshot value), and the
	// snapshot equals the online network — action sequences must match
	// step for step across explore and exploit draws.
	for i := 0; i < 50; i++ {
		s := []float64{float64(i % 3), 0.5, -0.25}
		if got, want := a.SelectAction(s, nil), d.SelectAction(s, nil); got != want {
			t.Fatalf("step %d: actor chose %d, DQN chose %d", i, got, want)
		}
	}
}
