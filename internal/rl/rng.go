package rl

import "fmt"

// RNG is a splitmix64 pseudo-random generator with a single uint64 of
// exportable state, so a learner checkpoint can carry its exploration
// cursor and resume byte-identically. math/rand's generator state is
// private; this one is tiny, fast, and serializable.
//
// RNG is not safe for concurrent use; give each actor its own stream
// (see DeriveSeed).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically from seed. Equal
// seeds produce equal streams.
func NewRNG(seed int64) *RNG {
	r := &RNG{state: uint64(seed)}
	// Burn one mix so small adjacent seeds don't start near-identical.
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics when n is not
// positive, matching math/rand.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("rl: Intn bound %d must be positive", n))
	}
	// Rejection sampling removes modulo bias.
	limit := (^uint64(0) / uint64(n)) * uint64(n)
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % uint64(n))
		}
	}
}

// State returns the generator's cursor for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a cursor written by State.
func (r *RNG) SetState(s uint64) { r.state = s }

// DeriveSeed mixes a base seed with stream coordinates (e.g. training
// round and actor index) into an independent, reproducible child seed.
// Equal inputs always yield equal outputs, on every platform.
func DeriveSeed(base int64, coords ...int) int64 {
	h := uint64(base) ^ 0x8A5CD789635D2DFF
	mix := func(v uint64) {
		h ^= v
		h += 0x9E3779B97F4A7C15
		h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
		h = (h ^ (h >> 27)) * 0x94D049BB133111EB
		h ^= h >> 31
	}
	for _, c := range coords {
		mix(uint64(int64(c)))
	}
	return int64(h)
}
