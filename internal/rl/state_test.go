package rl

import (
	"bytes"
	"testing"
)

// TestCaptureRestoreFullStateRoundTrip proves the snapshot blob carries
// the agent's complete mutable state: a restored agent re-captures to
// the same bytes and behaves identically from then on.
func TestCaptureRestoreFullStateRoundTrip(t *testing.T) {
	d := trainedDQN(t, 42)
	blob, err := d.CaptureFullState(7)
	if err != nil {
		t.Fatalf("CaptureFullState: %v", err)
	}

	// Restore into an agent built with a different seed: every divergent
	// piece of state (weights, optimizer, replay, RNG, counters) must be
	// overwritten by the blob.
	d2, err := NewDQN(3, 2, smallDQNConfig(99))
	if err != nil {
		t.Fatalf("NewDQN: %v", err)
	}
	eps, err := d2.RestoreFullState(blob)
	if err != nil {
		t.Fatalf("RestoreFullState: %v", err)
	}
	if eps != 7 {
		t.Errorf("restored episodes = %d, want 7", eps)
	}
	blob2, err := d2.CaptureFullState(eps)
	if err != nil {
		t.Fatalf("re-capture: %v", err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Fatal("restored agent re-captures to different bytes")
	}

	// Both agents must now evolve in lockstep.
	for i := 0; i < 25; i++ {
		s := []float64{float64(i % 3), 0.25, float64(i % 2)}
		a1 := d.SelectAction(s, nil)
		a2 := d2.SelectAction(s, nil)
		if a1 != a2 {
			t.Fatalf("step %d: actions diverge (%d vs %d)", i, a1, a2)
		}
		tr := Transition{
			State:     s,
			Action:    a1,
			Reward:    float64(i%5) - 2,
			NextState: []float64{float64((i + 1) % 3), 0.25, float64((i + 1) % 2)},
			Done:      i%9 == 8,
		}
		d.Observe(tr)
		d2.Observe(tr)
	}
	if !bytes.Equal(checkpointOf(t, d, 7), checkpointOf(t, d2, 7)) {
		t.Error("agents diverge after identical post-restore transitions")
	}

	if _, err := d2.RestoreFullState([]byte("garbage")); err == nil {
		t.Error("RestoreFullState accepted garbage")
	}
}
