package rl

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Full-state capture for crash-safe snapshots (internal/snapshot).
// SaveCheckpoint deliberately excludes the replay buffer — warm-starting
// refills it from fresh experience — but exact resume cannot: a resumed
// learner must sample the very same minibatches the uninterrupted run
// would have, so the full state is the checkpoint plus the replay ring
// (positions included) and the last reported loss.

// dqnFullWire wraps the regular checkpoint with the replay ring buffer.
type dqnFullWire struct {
	Checkpoint []byte // SaveCheckpoint envelope (networks, Adam, counters, RNG)
	ReplayCap  int
	ReplayNext int
	ReplayFull bool
	ReplayBuf  []Transition // used entries: all when full, [0,next) otherwise
	LastLoss   float64
}

// CaptureFullState serializes everything RestoreFullState needs to
// continue training byte-identically: the full checkpoint plus replay
// buffer contents and the last minibatch loss. episodes is recorded in
// the embedded checkpoint header.
func (d *DQN) CaptureFullState(episodes uint64) ([]byte, error) {
	var ckpt bytes.Buffer
	if err := d.SaveCheckpoint(&ckpt, episodes); err != nil {
		return nil, err
	}
	used := d.replay.buf
	if !d.replay.full {
		used = d.replay.buf[:d.replay.next]
	}
	wire := dqnFullWire{
		Checkpoint: ckpt.Bytes(),
		ReplayCap:  d.replay.Cap(),
		ReplayNext: d.replay.next,
		ReplayFull: d.replay.full,
		ReplayBuf:  used,
		LastLoss:   d.lastLoss,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wire); err != nil {
		return nil, fmt.Errorf("rl: encoding full state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreFullState rebuilds the learner from a CaptureFullState blob,
// returning the episode count from the embedded checkpoint header. All
// validation — replay-ring invariants and the checkpoint's own shape
// checks — happens before anything is committed, so a failed restore
// leaves the agent untouched.
func (d *DQN) RestoreFullState(blob []byte) (episodes uint64, err error) {
	var wire dqnFullWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&wire); err != nil {
		return 0, fmt.Errorf("rl: decoding full state: %w", err)
	}
	if wire.ReplayCap != d.replay.Cap() {
		return 0, fmt.Errorf("rl: snapshot replay capacity %d, agent has %d", wire.ReplayCap, d.replay.Cap())
	}
	if wire.ReplayNext < 0 || wire.ReplayNext >= wire.ReplayCap {
		return 0, fmt.Errorf("rl: snapshot replay cursor %d out of range", wire.ReplayNext)
	}
	want := wire.ReplayNext
	if wire.ReplayFull {
		want = wire.ReplayCap
	}
	if len(wire.ReplayBuf) != want {
		return 0, fmt.Errorf("rl: snapshot replay has %d entries, want %d", len(wire.ReplayBuf), want)
	}
	// LoadCheckpoint is itself all-validate-then-commit; if it fails,
	// nothing (including the replay) has been touched.
	episodes, err = d.LoadCheckpoint(bytes.NewReader(wire.Checkpoint))
	if err != nil {
		return 0, err
	}
	buf := make([]Transition, wire.ReplayCap)
	copy(buf, wire.ReplayBuf)
	d.replay.buf = buf
	d.replay.next = wire.ReplayNext
	d.replay.full = wire.ReplayFull
	d.lastLoss = wire.LastLoss
	return episodes, nil
}
