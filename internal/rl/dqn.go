package rl

import (
	"fmt"
	"io"

	"mobirescue/internal/nn"
	"mobirescue/internal/obs"
)

// Exported RL training telemetry metric names (see README
// "Observability").
const (
	MetricEnvSteps      = "mobirescue_rl_env_steps_total"
	MetricLearnSteps    = "mobirescue_rl_learn_steps_total"
	MetricReplaySize    = "mobirescue_rl_replay_occupancy"
	MetricEpsilon       = "mobirescue_rl_epsilon"
	MetricBatchLoss     = "mobirescue_rl_batch_loss"
	MetricEpisodeReturn = "mobirescue_rl_episode_return"
)

// dqnMetrics holds the agent's optional telemetry handles; the zero value
// (all nil) is a free no-op.
type dqnMetrics struct {
	envSteps      *obs.Counter
	learnSteps    *obs.Counter
	replaySize    *obs.Gauge
	epsilon       *obs.Gauge
	batchLoss     *obs.Gauge
	episodeReturn *obs.Histogram
}

// DQNConfig tunes the deep Q-learning agent.
type DQNConfig struct {
	// Hidden lists hidden-layer sizes for the Q-network.
	Hidden []int
	// Gamma is the discount factor.
	Gamma float64
	// LR is the Adam learning rate.
	LR float64
	// EpsilonStart/End and EpsilonDecaySteps schedule exploration:
	// epsilon anneals linearly over the first EpsilonDecaySteps
	// environment steps.
	EpsilonStart, EpsilonEnd float64
	EpsilonDecaySteps        int
	// BufferSize and BatchSize configure experience replay.
	BufferSize, BatchSize int
	// LearnStart delays learning until the buffer holds this many
	// transitions.
	LearnStart int
	// TargetSync is the number of learning steps between target-network
	// syncs.
	TargetSync int
	// GradClip bounds the gradient L2 norm (0 disables clipping).
	GradClip float64
	// Seed drives exploration and initialization.
	Seed int64
}

// DefaultDQNConfig returns standard hyperparameters sized for the
// dispatch problem.
func DefaultDQNConfig() DQNConfig {
	return DQNConfig{
		Hidden:            []int{64, 64},
		Gamma:             0.95,
		LR:                1e-3,
		EpsilonStart:      1.0,
		EpsilonEnd:        0.05,
		EpsilonDecaySteps: 5000,
		BufferSize:        20000,
		BatchSize:         32,
		LearnStart:        500,
		TargetSync:        250,
		GradClip:          5,
		Seed:              1,
	}
}

// DQN is a deep Q-learning agent with a target network and uniform
// experience replay. It is not safe for concurrent use.
//
// DQN implements Policy. Its exploration/replay randomness comes from an
// exportable-state RNG so SaveCheckpoint/LoadCheckpoint can resume a
// training run byte-identically.
type DQN struct {
	cfg      DQNConfig
	online   *nn.Network
	target   *nn.Network
	opt      *nn.Adam
	replay   *Replay
	rng      *RNG
	grad     []float64
	scratch  []float64 // flat nn.ForwardInto buffer for the action/learn hot loops
	dOut     []float64
	batch    []Transition
	steps    int     // environment steps observed
	learnN   int     // learning steps taken
	lastLoss float64 // mean squared TD error of the last minibatch
	nAction  int
	met      dqnMetrics
}

var _ Policy = (*DQN)(nil)

// NewDQN builds an agent for the given state/action sizes.
func NewDQN(stateSize, numActions int, cfg DQNConfig) (*DQN, error) {
	if stateSize <= 0 || numActions <= 0 {
		return nil, fmt.Errorf("rl: invalid sizes state=%d actions=%d", stateSize, numActions)
	}
	if cfg.Gamma < 0 || cfg.Gamma >= 1 {
		return nil, fmt.Errorf("rl: gamma %v out of [0,1)", cfg.Gamma)
	}
	if cfg.BatchSize <= 0 || cfg.BufferSize < cfg.BatchSize {
		return nil, fmt.Errorf("rl: buffer %d must hold at least one batch of %d", cfg.BufferSize, cfg.BatchSize)
	}
	sizes := append([]int{stateSize}, cfg.Hidden...)
	sizes = append(sizes, numActions)
	online, err := nn.New(cfg.Seed, sizes, nn.ActReLU, nn.ActLinear)
	if err != nil {
		return nil, err
	}
	return &DQN{
		cfg:     cfg,
		online:  online,
		target:  online.Clone(),
		opt:     nn.NewAdam(cfg.LR),
		replay:  NewReplay(cfg.BufferSize),
		rng:     NewRNG(cfg.Seed),
		grad:    make([]float64, online.NumParams()),
		scratch: online.NewScratch(),
		dOut:    make([]float64, numActions),
		nAction: numActions,
	}, nil
}

// EnableMetrics registers the agent's training telemetry (environment
// and learning step counters, replay occupancy, exploration rate, batch
// loss, episode returns) with reg. Nil reg is a no-op; telemetry is
// disabled (and free) by default.
func (d *DQN) EnableMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	d.met = dqnMetrics{
		envSteps:   reg.Counter(MetricEnvSteps, "RL transitions observed."),
		learnSteps: reg.Counter(MetricLearnSteps, "Gradient steps taken."),
		replaySize: reg.Gauge(MetricReplaySize, "Transitions currently in the replay buffer."),
		epsilon:    reg.Gauge(MetricEpsilon, "Current exploration rate."),
		batchLoss:  reg.Gauge(MetricBatchLoss, "Mean squared TD error of the last minibatch."),
		episodeReturn: reg.Histogram(MetricEpisodeReturn, "Total reward per training episode.",
			[]float64{-100, -10, 0, 10, 50, 100, 250, 500, 1000, 2500, 5000, 10000}),
	}
}

// Epsilon returns the current exploration rate.
func (d *DQN) Epsilon() float64 {
	if d.cfg.EpsilonDecaySteps <= 0 {
		return d.cfg.EpsilonEnd
	}
	frac := float64(d.steps) / float64(d.cfg.EpsilonDecaySteps)
	if frac > 1 {
		frac = 1
	}
	return d.cfg.EpsilonStart + (d.cfg.EpsilonEnd-d.cfg.EpsilonStart)*frac
}

// QValues returns the online network's action values for state.
func (d *DQN) QValues(state []float64) []float64 { return d.online.Forward(state) }

// SelectAction picks an epsilon-greedy action under the optional validity
// mask. It returns -1 when no action is valid.
func (d *DQN) SelectAction(state []float64, mask []bool) int {
	if d.rng.Float64() < d.Epsilon() {
		return randValid(d.rng, d.nAction, mask)
	}
	return argmaxMasked(d.online.ForwardInto(state, d.scratch), mask)
}

// Greedy picks the best action without exploration.
func (d *DQN) Greedy(state []float64, mask []bool) int {
	return argmaxMasked(d.online.ForwardInto(state, d.scratch), mask)
}

// Observe records a transition and performs one learning step when
// enough experience has accumulated.
func (d *DQN) Observe(t Transition) {
	d.replay.Add(t)
	d.steps++
	d.met.envSteps.Inc()
	d.met.replaySize.Set(float64(d.replay.Len()))
	d.met.epsilon.Set(d.Epsilon())
	if d.replay.Len() >= d.cfg.LearnStart && d.replay.Len() >= d.cfg.BatchSize {
		d.learn()
	}
}

// learn samples a minibatch and applies one Q-learning gradient step.
func (d *DQN) learn() {
	d.batch = d.replay.Sample(d.rng, d.cfg.BatchSize, d.batch)
	nn.Zero(d.grad)
	dOut := d.dOut
	lossSum := 0.0
	for _, tr := range d.batch {
		target := tr.Reward
		if !tr.Done {
			// nextQ aliases d.scratch; it is fully consumed into the
			// scalar target before the next ForwardInto reuses the buffer.
			nextQ := d.target.ForwardInto(tr.NextState, d.scratch)
			target += d.cfg.Gamma * maxMasked(nextQ, tr.NextMask)
		}
		q := d.online.ForwardInto(tr.State, d.scratch)
		for i := range dOut {
			dOut[i] = 0
		}
		// Squared TD error on the taken action only.
		td := q[tr.Action] - target
		lossSum += td * td
		dOut[tr.Action] = 2 * td
		d.online.Gradient(tr.State, dOut, d.grad)
	}
	nn.Scale(d.grad, 1.0/float64(len(d.batch)))
	nn.ClipGradient(d.grad, d.cfg.GradClip)
	d.opt.Step(d.online.Params(), d.grad)
	d.learnN++
	d.lastLoss = lossSum / float64(len(d.batch))
	d.met.learnSteps.Inc()
	d.met.batchLoss.Set(d.lastLoss)
	if d.cfg.TargetSync > 0 && d.learnN%d.cfg.TargetSync == 0 {
		d.target.SetParams(d.online.Params())
	}
}

// TrainEpisodes runs the agent in env for the given number of episodes
// and returns each episode's total reward. maxSteps bounds episode
// length (0 means 10000).
func (d *DQN) TrainEpisodes(env Environment, episodes, maxSteps int) []float64 {
	if maxSteps <= 0 {
		maxSteps = 10000
	}
	returns := make([]float64, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		state := env.Reset()
		total := 0.0
		for step := 0; step < maxSteps; step++ {
			mask := maskOf(env)
			a := d.SelectAction(state, mask)
			if a < 0 {
				break // nothing valid to do
			}
			next, reward, done := env.Step(a)
			total += reward
			d.Observe(Transition{
				State:     state,
				Action:    a,
				Reward:    reward,
				NextState: next,
				Done:      done,
				NextMask:  maskOf(env),
			})
			state = next
			if done {
				break
			}
		}
		d.met.episodeReturn.Observe(total)
		returns = append(returns, total)
	}
	return returns
}

// SnapshotPolicy returns a frozen deep copy of the online network, the
// policy snapshot parallel actors roll out against (see internal/train).
func (d *DQN) SnapshotPolicy() *nn.Network { return d.online.Clone() }

// Save writes the online network (the policy) to w.
func (d *DQN) Save(w io.Writer) error { return d.online.Save(w) }

// LoadPolicy replaces the online and target networks with one written by
// Save.
func (d *DQN) LoadPolicy(r io.Reader) error {
	net, err := nn.Load(r)
	if err != nil {
		return err
	}
	if net.InputSize() != d.online.InputSize() || net.OutputSize() != d.online.OutputSize() {
		return fmt.Errorf("rl: loaded network shape %dx%d does not match agent %dx%d",
			net.InputSize(), net.OutputSize(), d.online.InputSize(), d.online.OutputSize())
	}
	d.online = net
	d.target = net.Clone()
	d.grad = make([]float64, net.NumParams())
	d.scratch = net.NewScratch()
	return nil
}

// Steps returns the number of transitions observed.
func (d *DQN) Steps() int { return d.steps }

// LastLoss returns the mean squared TD error of the most recent
// learning minibatch (0 before the first learn step). The training
// pipeline's flight recorder reads it per round.
func (d *DQN) LastLoss() float64 { return d.lastLoss }
