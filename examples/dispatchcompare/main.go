// Dispatchcompare runs MobiRescue against the paper's two baselines
// (Rescue and Schedule) on the same evaluation day and prints the
// headline comparison (Figures 9–14 in summary form).
//
//	go run ./examples/dispatchcompare
package main

import (
	"fmt"
	"log"
	"time"

	"mobirescue"
	"mobirescue/internal/stats"
)

func main() {
	log.SetFlags(0)
	fmt.Println("building scenario...")
	sc, err := mobirescue.BuildScenario(mobirescue.SmallScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := mobirescue.NewSystem(sc, mobirescue.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training RL dispatcher (%d teams)...\n", sys.Teams)
	if _, err := sys.TrainRL(8); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running the three methods on the evaluation day...")
	cmp, err := sys.RunComparison()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-11s %8s %8s %12s %14s %14s %12s\n",
		"method", "served", "timely", "compute", "medDelay(s)", "medTimeli(s)", "meanServing")
	for _, name := range mobirescue.MethodNames {
		res := cmp.Results[name]
		medDelay, _ := stats.NewCDF(res.DrivingDelaysSeconds()).Quantile(0.5)
		medTimeli, _ := stats.NewCDF(res.TimelinessSeconds()).Quantile(0.5)
		meanServing := 0.0
		for _, r := range res.Rounds {
			meanServing += float64(r.Serving)
		}
		meanServing /= float64(len(res.Rounds))
		fmt.Printf("%-11s %8d %8d %12v %14.0f %14.0f %12.1f\n",
			name, res.TotalServed(), res.TotalTimelyServed(),
			res.MeanComputeDelay().Round(time.Second), medDelay, medTimeli, meanServing)
	}

	pq, err := sys.PredictionQuality()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrequest prediction (Figures 15-16): SVM accuracy %.3f / precision %.3f "+
		"vs time-series %.3f / %.3f\n",
		pq.SVMOverall.Accuracy(), pq.SVMOverall.Precision(),
		pq.TSAOverall.Accuracy(), pq.TSAOverall.Precision())
}
