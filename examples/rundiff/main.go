// Rundiff is the flight-recorder walkthrough: it records the same
// evaluation run three times — workers=1, workers=8, and workers=1
// under chaos — and diffs the event logs. The first diff witnesses the
// determinism contract (worker counts never change the event stream,
// byte for byte); the second pinpoints the exact window where fault
// injection first bent the run, then prints that run's
// perturbation-and-recovery timeline. Everything is seeded, so the
// output is reproducible.
//
//	go run ./examples/rundiff
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"mobirescue"
	"mobirescue/internal/chaos"
	"mobirescue/internal/core"
	"mobirescue/internal/obs/eventlog"
)

const chaosSeed = 7

// record builds a fresh system at the given worker count, runs the
// Schedule baseline on the evaluation day (no training needed), and
// returns the captured event log.
func record(sc *core.Scenario, workers int, profile chaos.Profile) []byte {
	cfg := mobirescue.DefaultSystemConfig()
	cfg.Workers = workers
	sys, err := mobirescue.NewSystem(sc, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if profile.Enabled() {
		if err := sys.SetChaos(profile, chaosSeed); err != nil {
			log.Fatal(err)
		}
	}
	var buf bytes.Buffer
	l, err := eventlog.New(&buf, sys.BuildManifest("small", sc.Config), eventlog.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sys.SetEventLog(l)
	if _, err := sys.RunMethod("schedule", 0); err != nil {
		log.Fatal(err)
	}
	if err := l.Close(); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}

func read(raw []byte) *eventlog.RunLog {
	rl, err := eventlog.Read(bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	return rl
}

func main() {
	log.SetFlags(0)
	fmt.Println("building scenario...")
	sc, err := mobirescue.BuildScenario(mobirescue.SmallScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("recording run A (workers=1) and run B (workers=8)...")
	a := record(sc, 1, chaos.Off())
	b := record(sc, 8, chaos.Off())

	fmt.Println("\n--- determinism witness: same seed, different worker counts ---")
	eventlog.WriteDiff(os.Stdout, eventlog.Diff(read(a), read(b)), "workers=1", "workers=8")

	fmt.Printf("\nrecording run C (workers=1, chaos profile %s, seed %d)...\n",
		chaos.DefaultProfile().Name, chaosSeed)
	c := record(sc, 1, chaos.DefaultProfile())

	fmt.Println("\n--- first-divergence finder: clean vs chaotic run ---")
	eventlog.WriteDiff(os.Stdout, eventlog.Diff(read(a), read(c)), "clean", "chaos")

	fmt.Println("\n--- perturbation-and-recovery summary of the chaotic run ---")
	rc := read(c)
	tls := eventlog.BuildTimelines(rc)
	for _, r := range eventlog.BuildResilience(rc, tls) {
		if r.Run == "" {
			continue // faults logged outside a named run
		}
		if r.FirstFaultW == 0 {
			fmt.Printf("%s: no faults recorded\n", r.Run)
			continue
		}
		fmt.Printf("%s: %d fault(s), first at window %d; serving baseline %.1f, dip to %.0f at window %d, ",
			r.Run, r.FaultCount, r.FirstFaultW, r.Baseline, r.Dip, r.DipW)
		if r.RecoveredW > 0 {
			fmt.Printf("recovered by window %d\n", r.RecoveredW)
		} else {
			fmt.Printf("never recovered\n")
		}
	}
	fmt.Println("(run `go run ./cmd/analyze timeline <log>` for the full per-window table)")

	fmt.Println("\nreproduce from the command line:")
	fmt.Println("  go run ./cmd/mobirescue -scale small -method schedule -episodes -1 -eventlog a.jsonl")
	fmt.Println("  go run ./cmd/mobirescue -scale small -method schedule -episodes -1 -workers 8 -eventlog b.jsonl")
	fmt.Println("  go run ./cmd/analyze diff a.jsonl b.jsonl")
	fmt.Println("  go run ./cmd/analyze timeline a.jsonl")
}
