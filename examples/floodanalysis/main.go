// Floodanalysis reproduces the paper's dataset-measurement section
// (Section III) over the synthetic traces: the disaster's uneven impact
// across regions (Observation 1) and its effect on movement and rescue
// demand (Observation 2).
//
//	go run ./examples/floodanalysis
package main

import (
	"fmt"
	"log"
	"strings"

	"mobirescue"
)

func main() {
	log.SetFlags(0)
	fmt.Println("building scenario (this generates two hurricanes' traces)...")
	sc, err := mobirescue.BuildScenario(mobirescue.SmallScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}
	m := mobirescue.NewMeasurement(sc)

	// Observation 1: impact severity differs by region and is explained
	// by the disaster-related factors.
	tbl, err := m.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nObservation 1 — disaster-related factors vs vehicle flow rate (Table I):")
	fmt.Printf("  precipitation: %+.3f   (paper: -0.897)\n", tbl.Precip)
	fmt.Printf("  wind speed:    %+.3f   (paper: -0.781)\n", tbl.Wind)
	fmt.Printf("  altitude:      %+.3f   (paper: +0.739)\n", tbl.Altitude)

	fig2 := m.Fig2()
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fmt.Println("\nFlow before vs after the disaster (Figure 2):")
	fmt.Printf("  R1 (high altitude): %.2f -> %.2f veh/h\n", mean(fig2.R1Before), mean(fig2.R1After))
	fmt.Printf("  R2 (low altitude):  %.2f -> %.2f veh/h\n", mean(fig2.R2Before), mean(fig2.R2After))

	// Observation 2: movement collapses during the disaster and rescue
	// demand concentrates where the impact is worst.
	fig5 := m.Fig5()
	fmt.Println("\nObservation 2 — per-region flow by phase (Figure 5):")
	fmt.Printf("  %-16s %8s %8s %8s\n", "region", "before", "during", "after")
	for i, r := range fig5.Regions {
		fmt.Printf("  %-16s %8.2f %8.2f %8.2f\n",
			sc.City.Regions[r].Name, fig5.Before[i], fig5.During[i], fig5.After[i])
	}

	fig4 := m.Fig4()
	total := 0
	for _, n := range fig4 {
		total += n
	}
	fmt.Println("\nRescued people per region (Figure 4):")
	for r := 1; r <= sc.City.NumRegions(); r++ {
		bar := strings.Repeat("#", 40*fig4[r]/max(total, 1))
		fmt.Printf("  %-16s %4d %s\n", sc.City.Regions[r].Name, fig4[r], bar)
	}

	fig6 := m.Fig6()
	fmt.Println("\nHospital deliveries per day (Figure 6):")
	cfg := sc.Eval.Data.Config
	for d, n := range fig6 {
		noon := cfg.Start.AddDate(0, 0, d).Add(12 * 3600e9)
		fmt.Printf("  day %2d (%-6s): %4d %s\n", d, cfg.PhaseOf(noon), n, strings.Repeat("*", n/2))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
