// Quickstart: build a small synthetic disaster scenario, train the
// MobiRescue models, and dispatch rescue teams over the evaluation day.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mobirescue"
)

func main() {
	log.SetFlags(0)

	// 1. Build the world: a seven-region Charlotte-like city, a
	//    Florence-like evaluation hurricane and a Michael-like training
	//    hurricane, each with its flood timeline and 400 synthetic
	//    residents' GPS traces.
	fmt.Println("building scenario...")
	sc, err := mobirescue.BuildScenario(mobirescue.SmallScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  city: %d road segments in %d regions, %d hospitals\n",
		sc.City.Graph.NumSegments(), sc.City.NumRegions(), len(sc.City.Hospitals))
	fmt.Printf("  evaluation day %d has %d rescue requests\n\n",
		sc.Eval.PeakRequestDay(), sc.Eval.MaxDailyRequests())

	// 2. Assemble the system: this trains the SVM rescue-request
	//    predictor on the training hurricane's traces.
	fmt.Println("training SVM request predictor...")
	sys, err := mobirescue.NewSystem(sc, mobirescue.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SVM: %d support vectors\n\n", sys.SVM.NumSVs())

	// 3. Train the RL dispatcher by replaying the training disaster day.
	fmt.Println("training RL dispatcher (4 episodes)...")
	returns, err := sys.TrainRL(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  timely served per training episode: %v\n\n", returns)

	// 4. Dispatch on the evaluation day.
	fmt.Println("running MobiRescue on the evaluation day...")
	res, err := sys.RunMethod("mr", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  requests:       %d\n", len(res.Requests))
	fmt.Printf("  served:         %d\n", res.TotalServed())
	fmt.Printf("  timely served:  %d (within %v)\n", res.TotalTimelyServed(), res.Config.TimelyThreshold)
	fmt.Printf("  compute delay:  %v per dispatch round\n",
		res.MeanComputeDelay().Round(100*time.Millisecond))
}
