// Svmtrain exercises the rescue-request prediction stage alone: it
// derives a labeled training set from the training hurricane's traces
// (hospital-stay detection + flood-zone labeling, Section IV-B), trains
// the SVM, and probes it across the disaster-related factor space.
//
//	go run ./examples/svmtrain
package main

import (
	"fmt"
	"log"

	"mobirescue"
	"mobirescue/internal/core"
	"mobirescue/internal/stats"
)

func main() {
	log.SetFlags(0)
	fmt.Println("building scenario...")
	sc, err := mobirescue.BuildScenario(mobirescue.SmallScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}

	x, y, err := core.BuildSVMTrainingSet(sc.City, sc.Train, sc.Elev, 1)
	if err != nil {
		log.Fatal(err)
	}
	pos := 0
	for _, label := range y {
		if label {
			pos++
		}
	}
	fmt.Printf("training set derived from traces: %d examples (%d rescued, %d not)\n",
		len(x), pos, len(x)-pos)

	model, err := core.TrainSVM(sc.City, sc.Train, sc.Elev, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained SVM with %d support vectors\n\n", model.NumSVs())

	var conf stats.Confusion
	for i := range x {
		conf.Observe(model.Predict(x[i]), y[i])
	}
	fmt.Printf("training-set accuracy %.3f, precision %.3f, recall %.3f\n\n",
		conf.Accuracy(), conf.Precision(), conf.Recall())

	fmt.Println("decision surface probes (precip mm/h, wind mph, altitude m):")
	probes := []struct {
		name    string
		factors []float64
	}{
		{"calm day, high ground", []float64{0, 5, 230}},
		{"calm day, low ground", []float64{0, 5, 192}},
		{"heavy storm, high ground", []float64{55, 50, 230}},
		{"heavy storm, mid ground", []float64{55, 50, 210}},
		{"heavy storm, low ground", []float64{55, 50, 192}},
		{"extreme storm, low ground", []float64{80, 65, 190}},
	}
	for _, p := range probes {
		verdict := "stay put"
		if model.Predict(p.factors) {
			verdict = "RESCUE"
		}
		fmt.Printf("  %-28s (%3.0f, %2.0f, %3.0f) -> %-8s (margin %+.2f)\n",
			p.name, p.factors[0], p.factors[1], p.factors[2], verdict, model.Decision(p.factors))
	}
}
