// Chaoscompare runs the three dispatch methods twice on the same
// evaluation day — once fault-free, once under the default chaos
// profile (surge closures, vehicle breakdowns, sensing faults, and
// dispatcher faults, with every dispatcher hardened by the Resilient
// wrapper) — and prints the degradation table plus the full resilience
// report for MobiRescue. The chaos run is seeded, so the whole output
// is reproducible.
//
//	go run ./examples/chaoscompare
package main

import (
	"fmt"
	"log"
	"os"

	"mobirescue"
	"mobirescue/internal/chaos"
	"mobirescue/internal/core"
	"mobirescue/internal/sim"
)

const chaosSeed = 7

func main() {
	log.SetFlags(0)
	fmt.Println("building scenario...")
	sc, err := mobirescue.BuildScenario(mobirescue.SmallScenarioConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys, err := mobirescue.NewSystem(sc, mobirescue.DefaultSystemConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training RL dispatcher (%d teams)...\n", sys.Teams)
	if _, err := sys.TrainRL(4); err != nil {
		log.Fatal(err)
	}

	fmt.Println("fault-free comparison run...")
	base, err := sys.RunComparison()
	if err != nil {
		log.Fatal(err)
	}

	profile := chaos.DefaultProfile()
	fmt.Printf("chaotic comparison run (profile=%s, seed=%d)...\n", profile.Name, chaosSeed)
	if err := sys.SetChaos(profile, chaosSeed); err != nil {
		log.Fatal(err)
	}
	faulty, err := sys.RunComparison()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-11s %14s %14s %12s %10s\n",
		"method", "served(clean)", "served(chaos)", "retained", "hardening")
	for _, name := range core.MethodNames {
		b, f := base.Results[name], faulty.Results[name]
		retained := 100.0
		if b.TotalServed() > 0 {
			retained = 100 * float64(f.TotalServed()) / float64(b.TotalServed())
		}
		fmt.Printf("%-11s %14d %14d %11.1f%% %10d\n",
			name, b.TotalServed(), f.TotalServed(), retained,
			f.Resilience.TotalRejected()+f.Resilience.Reroutes+
				f.Resilience.StrandedDiverts+f.Resilience.VehicleStalls)
	}

	fmt.Println("\nresilience report (MobiRescue):")
	if err := sim.WriteResilienceReport(os.Stdout,
		base.Results["MobiRescue"], faulty.Results["MobiRescue"]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreproduce: go run ./cmd/experiments -chaos %s -chaos-seed %d\n",
		profile.Name, chaosSeed)
}
