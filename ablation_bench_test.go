package mobirescue

// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// SVM kernel choice, flood-aware versus flood-blind routing, the
// IP-latency effect on timeliness, and the MR candidate-set size. Each
// reports its quality metric via b.ReportMetric so `go test -bench
// Ablation` doubles as an ablation table.

import (
	"math"
	"testing"
	"time"

	"mobirescue/internal/core"
	"mobirescue/internal/dispatch"
	"mobirescue/internal/ilp"
	"mobirescue/internal/roadnet"
	"mobirescue/internal/sim"
	"mobirescue/internal/stats"
	"mobirescue/internal/svm"
)

// svmEvalAccuracy trains a kernel on the fixture's training episode and
// scores per-person predictions on the evaluation episode.
func svmEvalAccuracy(b *testing.B, f *benchFixture, kernel svm.Kernel, c float64) stats.Confusion {
	b.Helper()
	x, y, err := core.BuildSVMTrainingSet(f.sc.City, f.sc.Train, f.sc.Elev, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := svm.DefaultConfig()
	cfg.Kernel = kernel
	cfg.C = c
	model, err := svm.Train(x, y, cfg)
	if err != nil {
		b.Fatal(err)
	}
	prov, err := core.NewPredictProvider(f.sc.City, f.sc.Eval, model, f.sc.Elev)
	if err != nil {
		b.Fatal(err)
	}
	ep := f.sc.Eval
	cfg2 := ep.Data.Config
	probe := cfg2.Start.Add(time.Duration(ep.PeakRequestDay())*24*time.Hour + 12*time.Hour)
	requestAt := map[int]time.Time{}
	for _, r := range ep.Data.Rescues {
		requestAt[r.PersonID] = r.RequestTime
	}
	var conf stats.Confusion
	for _, p := range ep.Data.People {
		truth := false
		at := probe
		if t, ok := requestAt[p.ID]; ok {
			truth = true
			at = t
		}
		pred, _, ok := prov.PredictPerson(p.ID, at)
		if !ok {
			continue
		}
		conf.Observe(pred, truth)
	}
	return conf
}

// BenchmarkAblationSVMKernelLinear and ...RBF compare the kernel choice
// (DESIGN.md §5.3) on cross-storm accuracy.
func BenchmarkAblationSVMKernelLinear(b *testing.B) {
	f := getFixture(b)
	var conf stats.Confusion
	for i := 0; i < b.N; i++ {
		conf = svmEvalAccuracy(b, f, svm.Linear{}, 10)
	}
	b.ReportMetric(conf.Accuracy(), "accuracy")
	b.ReportMetric(conf.Precision(), "precision")
}

func BenchmarkAblationSVMKernelRBF(b *testing.B) {
	f := getFixture(b)
	var conf stats.Confusion
	for i := 0; i < b.N; i++ {
		conf = svmEvalAccuracy(b, f, svm.RBF{Gamma: 1.0 / 3}, 10)
	}
	b.ReportMetric(conf.Accuracy(), "accuracy")
	b.ReportMetric(conf.Precision(), "precision")
}

// BenchmarkAblationFloodAwareRouting quantifies DESIGN.md §5.5: plan
// routes with and without flood awareness at the storm peak, then score
// each plan by its realized (flood-crawl) travel time.
func BenchmarkAblationFloodAwareRouting(b *testing.B) {
	f := getFixture(b)
	city := f.sc.City
	ep := f.sc.Eval
	at := ep.Data.Config.DisasterStart.Add(48 * time.Hour)
	real := sim.RescueCost{Base: ep.Disaster(city.Graph).CostAt(at)}
	aware := roadnet.NewRouter(city.Graph, real)
	blind := roadnet.NewRouter(city.Graph, roadnet.FreeFlow{})

	// Sample origin/destination pairs across hospitals and regions.
	var pairs []struct{ from, to roadnet.LandmarkID }
	for i, h := range city.Hospitals {
		for r := 1; r <= city.NumRegions(); r++ {
			to := city.Graph.NearestLandmark(city.Regions[r].Center)
			if to != roadnet.NoLandmark && to != h {
				pairs = append(pairs, struct{ from, to roadnet.LandmarkID }{h, to})
			}
		}
		_ = i
	}
	realized := func(route []roadnet.SegmentID) float64 {
		total := 0.0
		for _, sid := range route {
			w, _ := real.SegmentTime(city.Graph.Segment(sid))
			total += w
		}
		return total
	}
	var awareTotal, blindTotal float64
	for i := 0; i < b.N; i++ {
		awareTotal, blindTotal = 0, 0
		for _, p := range pairs {
			at := aware.Tree(p.from)
			bt := blind.Tree(p.from)
			if !at.Reachable(p.to) || !bt.Reachable(p.to) {
				continue
			}
			ap, err := at.PathTo(p.to)
			if err != nil {
				b.Fatal(err)
			}
			bp, err := bt.PathTo(p.to)
			if err != nil {
				b.Fatal(err)
			}
			awareTotal += realized(ap)
			blindTotal += realized(bp)
		}
	}
	if awareTotal > blindTotal+1e-9 {
		b.Fatalf("flood-aware routes slower than blind ones: %v vs %v", awareTotal, blindTotal)
	}
	if awareTotal > 0 {
		b.ReportMetric(blindTotal/awareTotal, "blind/aware-time-ratio")
	}
}

// BenchmarkAblationIPLatency quantifies DESIGN.md §5.4: the same
// Schedule dispatcher with and without the modeled IP solve time. The
// timely-served gap is the Figure 13 mechanism in isolation.
func BenchmarkAblationIPLatency(b *testing.B) {
	f := getFixture(b)
	run := func(lat ilp.LatencyModel) int {
		disp := dispatch.NewSchedule(f.sc.City.Graph, lat)
		res, err := f.sys.RunDispatcher(disp)
		if err != nil {
			b.Fatal(err)
		}
		return res.TotalTimelyServed()
	}
	var withLat, without int
	for i := 0; i < b.N; i++ {
		withLat = run(ilp.PaperLatency())
		without = run(ilp.LatencyModel{})
	}
	b.ReportMetric(float64(withLat), "timely-with-latency")
	b.ReportMetric(float64(without), "timely-without-latency")
	if without < withLat {
		b.Fatalf("removing IP latency should not hurt: %d vs %d", without, withLat)
	}
}

// BenchmarkAblationRewardGamma sweeps the serving-team weight γ
// (DESIGN.md §5.2) and reports the mean serving-team count a freshly
// trained policy settles on — higher γ should keep more teams home.
func BenchmarkAblationRewardGamma(b *testing.B) {
	if testing.Short() {
		b.Skip("trains two RL policies")
	}
	f := getFixture(b)
	meanServing := func(gamma float64) float64 {
		cfg := core.DefaultSystemConfig()
		cfg.MR = dispatch.DefaultMRConfig()
		cfg.MR.Gamma = gamma
		cfg.Teams = f.sys.Teams
		sys, err := core.NewSystem(f.sc, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.TrainRL(3); err != nil {
			b.Fatal(err)
		}
		res, err := sys.RunMethod("mr", 0)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range res.Rounds {
			sum += float64(r.Serving)
		}
		return sum / math.Max(1, float64(len(res.Rounds)))
	}
	var low, high float64
	for i := 0; i < b.N; i++ {
		low = meanServing(0.05)
		high = meanServing(2.0)
	}
	b.ReportMetric(low, "serving-gamma-0.05")
	b.ReportMetric(high, "serving-gamma-2.0")
}
