// Command genscenario generates a synthetic scenario and writes its
// pieces to disk: the city road network (JSON) and summary statistics of
// the generated mobility dataset. Useful for inspecting the substrate
// the experiments run on, or for loading the same city elsewhere.
//
// Usage:
//
//	genscenario [-scale small|mid|full] [-seed S] [-city city.json] [-people N]
//
// With -people N (e.g. 10000, 100000, 1000000) it additionally
// synthesizes a streaming metro-scale population tier over the same
// city — deterministic in the seed, region-weighted, O(people) memory —
// and prints its per-region distribution. Streaming tiers never
// materialize GPS tracks, so the 1M tier builds in seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mobirescue/internal/core"
	"mobirescue/internal/mobility"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genscenario: ")
	var (
		scale    = flag.String("scale", "small", "scenario scale: "+core.ScaleNames)
		seed     = flag.Int64("seed", 1, "random seed")
		cityPath = flag.String("city", "", "write the city road network JSON here")
		people   = flag.Int("people", 0, "also synthesize a streaming population tier of this size (10000|100000|1000000)")
	)
	flag.Parse()

	cfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = *seed
	sc, err := core.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *cityPath != "" {
		f, err := os.Create(*cityPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := sc.City.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote city to %s\n", *cityPath)
	}

	fmt.Printf("city:      %d landmarks, %d segments, %d regions, %d hospitals\n",
		sc.City.Graph.NumLandmarks(), sc.City.Graph.NumSegments(),
		sc.City.NumRegions(), len(sc.City.Hospitals))
	for name, ep := range map[string]*core.Episode{"eval (Florence-like)": sc.Eval, "train (Michael-like)": sc.Train} {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  storm:    %s, impact %s .. %s\n", ep.Storm.Name,
			ep.Storm.Start.Format("Jan 2 15:04"), ep.Storm.End.Format("Jan 2 15:04"))
		fmt.Printf("  people:   %d\n", len(ep.Data.People))
		fmt.Printf("  points:   %d GPS samples\n", len(ep.Data.Points))
		fmt.Printf("  trips:    %d\n", len(ep.Data.Trips))
		byDay := map[int]int{}
		for _, r := range ep.Data.Rescues {
			byDay[ep.Data.Config.DayIndex(r.RequestTime)]++
		}
		fmt.Printf("  rescues:  %d by day %v (eval day %d, max daily %d)\n",
			len(ep.Data.Rescues), byDay, ep.PeakRequestDay(), ep.MaxDailyRequests())
		byPhase := map[mobility.Phase]int{}
		for _, tr := range ep.Data.Trips {
			byPhase[ep.Data.Config.PhaseOf(tr.Depart)]++
		}
		fmt.Printf("  trips by phase: before=%d during=%d after=%d\n",
			byPhase[mobility.PhaseBefore], byPhase[mobility.PhaseDuring], byPhase[mobility.PhaseAfter])
	}

	if *people > 0 {
		mcfg := sc.Eval.Data.Config
		mcfg.NumPeople = *people
		st, err := mobility.NewStreamer(sc.City, mcfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("streaming tier: %d people (seed %d, O(people) memory, no stored tracks)\n",
			st.NumPeople(), mcfg.Seed)
		counts := st.HomeRegionCounts(sc.City)
		fmt.Printf("  homes by region:")
		for r := 1; r < len(counts); r++ {
			fmt.Printf(" %d=%d", r, counts[r])
		}
		fmt.Println()
	}
}
