// Command genscenario generates a synthetic scenario and writes its
// pieces to disk: the city road network (JSON) and summary statistics of
// the generated mobility dataset. Useful for inspecting the substrate
// the experiments run on, or for loading the same city elsewhere.
//
// Usage:
//
//	genscenario [-scale small|mid|full] [-seed S] [-city city.json]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mobirescue/internal/core"
	"mobirescue/internal/mobility"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genscenario: ")
	var (
		scale    = flag.String("scale", "small", "scenario scale: "+core.ScaleNames)
		seed     = flag.Int64("seed", 1, "random seed")
		cityPath = flag.String("city", "", "write the city road network JSON here")
	)
	flag.Parse()

	cfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = *seed
	sc, err := core.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *cityPath != "" {
		f, err := os.Create(*cityPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := sc.City.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote city to %s\n", *cityPath)
	}

	fmt.Printf("city:      %d landmarks, %d segments, %d regions, %d hospitals\n",
		sc.City.Graph.NumLandmarks(), sc.City.Graph.NumSegments(),
		sc.City.NumRegions(), len(sc.City.Hospitals))
	for name, ep := range map[string]*core.Episode{"eval (Florence-like)": sc.Eval, "train (Michael-like)": sc.Train} {
		fmt.Printf("%s:\n", name)
		fmt.Printf("  storm:    %s, impact %s .. %s\n", ep.Storm.Name,
			ep.Storm.Start.Format("Jan 2 15:04"), ep.Storm.End.Format("Jan 2 15:04"))
		fmt.Printf("  people:   %d\n", len(ep.Data.People))
		fmt.Printf("  points:   %d GPS samples\n", len(ep.Data.Points))
		fmt.Printf("  trips:    %d\n", len(ep.Data.Trips))
		byDay := map[int]int{}
		for _, r := range ep.Data.Rescues {
			byDay[ep.Data.Config.DayIndex(r.RequestTime)]++
		}
		fmt.Printf("  rescues:  %d by day %v (eval day %d, max daily %d)\n",
			len(ep.Data.Rescues), byDay, ep.PeakRequestDay(), ep.MaxDailyRequests())
		byPhase := map[mobility.Phase]int{}
		for _, tr := range ep.Data.Trips {
			byPhase[ep.Data.Config.PhaseOf(tr.Depart)]++
		}
		fmt.Printf("  trips by phase: before=%d during=%d after=%d\n",
			byPhase[mobility.PhaseBefore], byPhase[mobility.PhaseDuring], byPhase[mobility.PhaseAfter])
	}
}
