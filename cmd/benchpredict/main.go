// Command benchpredict measures the prediction fast path and writes the
// results as JSON (the BENCH_predict.json artifact `make bench`
// produces).
//
// Three kinds of numbers are reported:
//
//   - Micro-benchmarks of the per-person decision path, run through
//     testing.Benchmark: svm.DecisionInto (linear and RBF — the
//     0 allocs/op contract) against the retained pre-fast-path
//     DecisionReference, nn.ForwardInto against the allocating Forward,
//     and weather.FactorIndex window factors against the naive trailing
//     scan.
//
//   - Wall-clock of PredictProvider.Predict per 5-minute window on the
//     evaluation episode, in four regimes: the retained pre-fast-path
//     reference loop (the baseline the >=5x acceptance criterion is
//     measured against), the fast path fully serial (Workers=1) cold
//     and warm, and the sharded parallel path (Workers=0, GOMAXPROCS)
//     cold and warm.
//
//   - Byte-identity witnesses: the fast serial, parallel, and reference
//     distributions are compared per window; benchpredict fails loudly
//     on any mismatch, so the "no predicted distribution changes"
//     contract is checked on every bench run, not just in CI tests.
//
// With -smoke the wall-clock passes shrink to a single iteration and
// the command asserts the allocation contracts (0 allocs/op for
// svm.DecisionInto and nn.ForwardInto) and identity witnesses without
// writing timings anyone should trust; CI's bench-smoke job runs this.
//
// Usage:
//
//	go run ./cmd/benchpredict -out BENCH_predict.json [-scale small] [-seed 1] [-windows 24] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"mobirescue/internal/core"
	"mobirescue/internal/geo"
	"mobirescue/internal/nn"
	"mobirescue/internal/roadnet"
	"mobirescue/internal/svm"
	"mobirescue/internal/weather"
)

// benchResult is one micro-benchmark line.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// predictResult is the PredictProvider wall-clock measurement.
type predictResult struct {
	Scale   string `json:"scale"`
	Seed    int64  `json:"seed"`
	People  int    `json:"people"`
	Windows int    `json:"windows"`
	Passes  int    `json:"passes"`
	// ReferenceNsPerWindow is the retained pre-fast-path implementation
	// (naive trailing-scan factors, reference kernel sum, fresh spatial
	// lookup per person, no cache) — the PR's baseline.
	ReferenceNsPerWindow float64 `json:"reference_ns_per_window"`
	// Serial/Parallel cold = uncached window computation; warm = cache
	// hits through the singleflight.
	SerialColdNsPerWindow   float64 `json:"serial_cold_ns_per_window"`
	SerialWarmNsPerWindow   float64 `json:"serial_warm_ns_per_window"`
	ParallelColdNsPerWindow float64 `json:"parallel_cold_ns_per_window"`
	ParallelWarmNsPerWindow float64 `json:"parallel_warm_ns_per_window"`
	// SingleThreadSpeedup is reference/serial_cold — the acceptance
	// criterion requires >= 5x.
	SingleThreadSpeedup float64 `json:"single_thread_speedup"`
	// ParallelSpeedup is serial_cold/parallel_cold (cold windows).
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// Identical is the byte-identity witness: fast serial == parallel
	// == reference distribution at every measured window.
	Identical bool `json:"results_identical"`
}

// report is the BENCH_predict.json document.
type report struct {
	GeneratedAt time.Time     `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOMAXPROCS  int           `json:"gomaxprocs"`
	Smoke       bool          `json:"smoke"`
	Micro       []benchResult `json:"micro"`
	Predict     predictResult `json:"predict"`
}

func toResult(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// trainMicroSVM fits a small model for the micro benchmarks (the system
// SVM is linear; an RBF twin exercises the flattened-SV path).
func trainMicroSVM(kernel svm.Kernel) (*svm.Model, error) {
	rng := rand.New(rand.NewSource(7))
	n, d := 120, 3
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		row := make([]float64, d)
		s := 0.0
		for j := range row {
			row[j] = rng.NormFloat64()*3 + float64(j)
			s += row[j] * float64(j%3-1)
		}
		x[i] = row
		y[i] = s+rng.NormFloat64() > 0
	}
	cfg := svm.DefaultConfig()
	cfg.Kernel = kernel
	return svm.Train(x, y, cfg)
}

// microBenchmarks measures the per-person decision path and enforces
// the 0 allocs/op contracts.
func microBenchmarks() ([]benchResult, error) {
	var out []benchResult

	for _, k := range []svm.Kernel{svm.Linear{}, svm.RBF{Gamma: 0.3}} {
		m, err := trainMicroSVM(k)
		if err != nil {
			return nil, fmt.Errorf("training micro SVM (%s): %w", k.Name(), err)
		}
		ws := svm.NewWorkspace()
		x := []float64{3.5, 18, 230}
		m.DecisionInto(ws, x) // warm the workspace
		fast := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.DecisionInto(ws, x)
			}
		})
		fr := toResult("svm_decision_into_"+k.Name(), fast)
		if fr.AllocsPerOp != 0 {
			return nil, fmt.Errorf("svm.DecisionInto(%s) allocates %d/op, want 0", k.Name(), fr.AllocsPerOp)
		}
		out = append(out, fr)
		ref := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.DecisionReference(x)
			}
		})
		out = append(out, toResult("svm_decision_reference_"+k.Name(), ref))
	}

	// DQN-sized network: the action-selection hot loop.
	net, err := nn.New(1, []int{8, 64, 64, 6}, nn.ActReLU, nn.ActLinear)
	if err != nil {
		return nil, err
	}
	scratch := net.NewScratch()
	xin := make([]float64, 8)
	fwdInto := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.ForwardInto(xin, scratch)
		}
	})
	fi := toResult("nn_forward_into", fwdInto)
	if fi.AllocsPerOp != 0 {
		return nil, fmt.Errorf("nn.ForwardInto allocates %d/op, want 0", fi.AllocsPerOp)
	}
	out = append(out, fi)
	fwd := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			net.Forward(xin)
		}
	})
	out = append(out, toResult("nn_forward_alloc", fwd))

	// Window factors: naive trailing scan vs the indexed storm series.
	start := time.Date(2018, 9, 12, 0, 0, 0, 0, time.UTC)
	city := weather.FlorencePreset(start, geoCharlotte())
	elev := func(p geoPoint) float64 { return 200 + 1500*(p.Lat-35.2) }
	p := geoCharlotte()
	at := start.Add(30 * time.Hour)
	naive := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			weather.WindowFactors(city, elev, p, at, 24*time.Hour)
		}
	})
	out = append(out, toResult("window_factors_naive", naive))
	fidx := weather.NewFactorIndex(city, elev, 24*time.Hour)
	fidx.WindowFactors(p, at)
	indexed := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fidx.WindowFactors(p, at)
		}
	})
	out = append(out, toResult("window_factors_indexed", indexed))
	return out, nil
}

// buildProvider constructs the scenario and a fresh eval-episode
// provider (no RL training needed: Predict is SVM-only).
func buildProvider(scale string, seed int64) (*core.Scenario, *core.PredictProvider, error) {
	scCfg, err := core.ScenarioConfigForScale(scale)
	if err != nil {
		return nil, nil, err
	}
	scCfg.Seed = seed
	sc, err := core.BuildScenario(scCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("building scenario: %w", err)
	}
	model, err := core.TrainSVM(sc.City, sc.Train, sc.Elev, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("training SVM: %w", err)
	}
	prov, err := core.NewPredictProvider(sc.City, sc.Eval, model, sc.Elev)
	if err != nil {
		return nil, nil, fmt.Errorf("building provider: %w", err)
	}
	return sc, prov, nil
}

// evalWindows returns n consecutive 5-minute windows starting at the
// evaluation peak day's morning — the per-window cadence the simulator
// queries Predict at.
func evalWindows(sc *core.Scenario, n int) []time.Time {
	base := sc.Eval.Data.Config.Start.
		Add(time.Duration(sc.Eval.PeakRequestDay()) * 24 * time.Hour).
		Add(8 * time.Hour)
	out := make([]time.Time, n)
	for i := range out {
		out[i] = base.Add(time.Duration(i) * 5 * time.Minute)
	}
	return out
}

// predictWallClock times the four regimes and verifies byte-identity.
func predictWallClock(sc *core.Scenario, prov *core.PredictProvider, scale string, seed int64, windows, passes int) (predictResult, error) {
	pr := predictResult{
		Scale:   scale,
		Seed:    seed,
		People:  prov.NumPeople(),
		Windows: windows,
		Passes:  passes,
	}
	ts := evalWindows(sc, windows)

	// Reference distributions double as the identity witness.
	refDist := make([]map[roadnet.SegmentID]float64, len(ts))
	startRef := time.Now()
	for pass := 0; pass < passes; pass++ {
		for i, at := range ts {
			refDist[i] = prov.PredictReference(at)
		}
	}
	pr.ReferenceNsPerWindow = perWindow(startRef, passes, windows)

	measure := func(workers int, cold bool) (float64, []map[roadnet.SegmentID]float64, error) {
		prov.SetWorkers(workers)
		dist := make([]map[roadnet.SegmentID]float64, len(ts))
		if !cold {
			// Populate the cache once, untimed.
			prov.ResetCache()
			for _, at := range ts {
				prov.Predict(at)
			}
		}
		start := time.Now()
		for pass := 0; pass < passes; pass++ {
			if cold {
				prov.ResetCache()
			}
			for i, at := range ts {
				dist[i] = prov.Predict(at)
			}
		}
		return perWindow(start, passes, windows), dist, nil
	}

	var serialDist, parallelDist []map[roadnet.SegmentID]float64
	var err error
	if pr.SerialColdNsPerWindow, serialDist, err = measure(1, true); err != nil {
		return pr, err
	}
	if pr.SerialWarmNsPerWindow, _, err = measure(1, false); err != nil {
		return pr, err
	}
	if pr.ParallelColdNsPerWindow, parallelDist, err = measure(0, true); err != nil {
		return pr, err
	}
	if pr.ParallelWarmNsPerWindow, _, err = measure(0, false); err != nil {
		return pr, err
	}

	pr.SingleThreadSpeedup = pr.ReferenceNsPerWindow / pr.SerialColdNsPerWindow
	pr.ParallelSpeedup = pr.SerialColdNsPerWindow / pr.ParallelColdNsPerWindow
	pr.Identical = true
	for i := range ts {
		if !reflect.DeepEqual(serialDist[i], refDist[i]) || !reflect.DeepEqual(parallelDist[i], refDist[i]) {
			pr.Identical = false
			return pr, fmt.Errorf("window %v: fast/parallel/reference distributions differ — the fast path changed the prediction", ts[i])
		}
	}
	return pr, nil
}

func perWindow(start time.Time, passes, windows int) float64 {
	return float64(time.Since(start).Nanoseconds()) / float64(passes*windows)
}

func main() {
	out := flag.String("out", "BENCH_predict.json", "output JSON path (- for stdout)")
	scale := flag.String("scale", "small", "scenario scale ("+core.ScaleNames+")")
	seed := flag.Int64("seed", 1, "scenario/SVM seed")
	windows := flag.Int("windows", 24, "5-minute windows to measure")
	passes := flag.Int("passes", 3, "timed passes over the window set")
	smoke := flag.Bool("smoke", false, "CI smoke mode: 1 window/pass, contracts only, no artifact timings to trust")
	flag.Parse()

	if *smoke {
		*windows, *passes = 2, 1
	}

	micro, err := microBenchmarks()
	if err != nil {
		log.Fatalf("benchpredict: %v", err)
	}
	sc, prov, err := buildProvider(*scale, *seed)
	if err != nil {
		log.Fatalf("benchpredict: %v", err)
	}
	pred, err := predictWallClock(sc, prov, *scale, *seed, *windows, *passes)
	if err != nil {
		log.Fatalf("benchpredict: %v", err)
	}
	if !*smoke && pred.SingleThreadSpeedup < 5 {
		log.Fatalf("benchpredict: single-thread speedup %.2fx < 5x acceptance floor", pred.SingleThreadSpeedup)
	}

	rep := report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		Micro:       micro,
		Predict:     pred,
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("benchpredict: %v", err)
	}
	doc = append(doc, '\n')
	if *smoke {
		// Smoke mode never overwrites the checked-in artifact; the run
		// is about contracts, not numbers.
		fmt.Printf("benchpredict: smoke ok (identity held, DecisionInto/ForwardInto 0 allocs/op, single-thread speedup %.2fx)\n",
			pred.SingleThreadSpeedup)
		return
	}
	if *out == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatalf("benchpredict: %v", err)
	}
	fmt.Printf("benchpredict: wrote %s (single-thread speedup %.2fx, parallel %.2fx, warm hit %.0f ns/window)\n",
		*out, pred.SingleThreadSpeedup, pred.ParallelSpeedup, pred.SerialWarmNsPerWindow)
}

// geoPoint / geoCharlotte keep the weather micro-bench free of a direct
// geo import tangle.
type geoPoint = geo.Point

func geoCharlotte() geoPoint { return geoPoint{Lat: 35.2271, Lon: -80.8431} }
