// Command analyze reproduces the paper's dataset-measurement section
// (Section III): Table I's factor/flow correlations and Figures 2–6 over
// the synthetic Hurricane-Florence mobility dataset.
//
// Usage:
//
//	analyze [-scale small|mid|full] [-seed S] [-out table1|fig2|fig3|fig4|fig5|fig6|all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mobirescue/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	var (
		scale = flag.String("scale", "mid", "scenario scale: "+core.ScaleNames)
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("out", "all", "which output: table1, fig2..fig6, all")
	)
	flag.Parse()

	cfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "building %s scenario (seed %d)...\n", *scale, *seed)
	sc, err := core.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := core.NewMeasurement(sc)
	want := func(name string) bool { return *out == "all" || *out == name }

	if want("table1") {
		tbl, err := m.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table I: correlation between disaster-related factors and vehicle flow rate")
		fmt.Printf("  %-20s %-14s %-12s %-10s\n", "", "Precipitation", "Wind speed", "Altitude")
		fmt.Printf("  %-20s %14.3f %12.3f %10.3f\n", "Vehicle flow rate", tbl.Precip, tbl.Wind, tbl.Altitude)
		fmt.Printf("  (paper:             %14.3f %12.3f %10.3f)\n\n", -0.897, -0.781, 0.739)
	}
	if want("fig2") {
		f2 := m.Fig2()
		fmt.Println("Figure 2: hourly flow rate, R1 vs R2, before vs after the disaster")
		fmt.Printf("  %4s %10s %10s %10s %10s\n", "hour", "R1-before", "R1-after", "R2-before", "R2-after")
		for i, h := range f2.Hours {
			fmt.Printf("  %4d %10.2f %10.2f %10.2f %10.2f\n",
				h, f2.R1Before[i], f2.R1After[i], f2.R2Before[i], f2.R2After[i])
		}
		fmt.Println()
	}
	if want("fig3") {
		cdf := m.Fig3()
		fmt.Println("Figure 3: CDF of per-segment |before - after| flow-rate difference")
		for _, pt := range cdf.Points(12) {
			fmt.Printf("  diff >= %7.3f veh/h at P = %.2f\n", pt.X, pt.P)
		}
		fmt.Println()
	}
	if want("fig4") {
		f4 := m.Fig4()
		fmt.Println("Figure 4: region distribution of rescued people")
		total := 0
		for _, n := range f4 {
			total += n
		}
		for r := 1; r <= sc.City.NumRegions(); r++ {
			bar := ""
			if total > 0 {
				for i := 0; i < 40*f4[r]/total; i++ {
					bar += "#"
				}
			}
			fmt.Printf("  %-16s %4d %s\n", sc.City.Regions[r].Name, f4[r], bar)
		}
		fmt.Println()
	}
	if want("fig5") {
		f5 := m.Fig5()
		fmt.Println("Figure 5: region flow rate before/during/after the disaster")
		fmt.Printf("  %-16s %10s %10s %10s\n", "region", "before", "during", "after")
		for i, r := range f5.Regions {
			fmt.Printf("  %-16s %10.2f %10.2f %10.2f\n",
				sc.City.Regions[r].Name, f5.Before[i], f5.During[i], f5.After[i])
		}
		fmt.Println()
	}
	if want("fig6") {
		f6 := m.Fig6()
		fmt.Println("Figure 6: people delivered to hospitals per day")
		cfgEval := sc.Eval.Data.Config
		for d, n := range f6 {
			phase := cfgEval.PhaseOf(cfgEval.Start.AddDate(0, 0, d).Add(12 * 3600e9))
			fmt.Printf("  day %2d (%s): %4d\n", d, phase, n)
		}
		fmt.Println()
	}
}
