// Command analyze is the offline analysis tool: the paper's
// dataset-measurement section (Section III) plus the flight-recorder
// toolchain built on internal/obs/eventlog.
//
// Usage:
//
//	analyze [-scale small|mid|full] [-seed S] [-out table1|fig2|...|fig6|all]
//	analyze timeline [-legacy-text] <run.jsonl | report.txt>
//	analyze diff <a.jsonl> <b.jsonl>
//	analyze bench-check [-tol 0.05] [-portable] -base BENCH_x.json -fresh fresh.json
//
// With no subcommand it reproduces Table I and Figures 2–6 over the
// synthetic Hurricane-Florence mobility dataset (the original mode).
//
// timeline reconstructs per-window served/active/reward curves — and,
// when the log contains faults, the perturbation-and-recovery
// resilience summary — from a flight-recorder event log written with
// `-eventlog` (see README "Flight recorder & run diffing").
// -legacy-text instead parses the old cmd/experiments text report
// (results_small.txt format); that path is deprecated — the text
// report collapses runs into hourly aggregates, so prefer the event
// log (see EXPERIMENTS.md).
//
// diff compares two event logs window by window and pinpoints the
// first divergence. Exit status 1 when the logs diverge or are not
// comparable, so CI can assert determinism with a single command.
//
// bench-check compares a fresh benchmark artifact against a checked-in
// baseline (BENCH_routing.json / BENCH_predict.json) with tolerance
// bands — see internal/benchgate for the rules. -portable restricts
// the gate to machine-independent checks (allocation counts, speedup
// ratios, boolean invariants) for CI hardware that differs from the
// baseline machine. Exit status 1 on any violation.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"

	"mobirescue/internal/benchgate"
	"mobirescue/internal/core"
	"mobirescue/internal/obs/eventlog"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("analyze: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "timeline":
			runTimeline(os.Args[2:])
			return
		case "diff":
			runDiff(os.Args[2:])
			return
		case "bench-check":
			runBenchCheck(os.Args[2:])
			return
		}
	}
	runFigures(os.Args[1:])
}

// runTimeline prints per-window timelines (and resilience curves) from
// a flight-recorder event log, or — deprecated — from a legacy
// cmd/experiments text report.
func runTimeline(args []string) {
	fs := flag.NewFlagSet("analyze timeline", flag.ExitOnError)
	legacy := fs.Bool("legacy-text", false, "parse a legacy experiments text report (results_small.txt format) instead of an event log (deprecated; see EXPERIMENTS.md)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("timeline: want exactly one input file (an -eventlog JSONL, or a text report with -legacy-text)")
	}
	path := fs.Arg(0)
	if *legacy {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := legacyTimeline(os.Stdout, f); err != nil {
			log.Fatal(err)
		}
		return
	}
	rl, err := eventlog.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	tls := eventlog.BuildTimelines(rl)
	eventlog.WriteTimeline(os.Stdout, rl, tls)
}

// runDiff compares two event logs and exits 1 when they diverge.
func runDiff(args []string) {
	fs := flag.NewFlagSet("analyze diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		log.Fatal("diff: want exactly two event-log files")
	}
	a, err := eventlog.ReadFile(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	b, err := eventlog.ReadFile(fs.Arg(1))
	if err != nil {
		log.Fatal(err)
	}
	res := eventlog.Diff(a, b)
	eventlog.WriteDiff(os.Stdout, res, fs.Arg(0), fs.Arg(1))
	if !res.Comparable || !res.Identical {
		os.Exit(1)
	}
}

// runBenchCheck gates a fresh benchmark artifact against a baseline
// and exits 1 on any violation.
func runBenchCheck(args []string) {
	fs := flag.NewFlagSet("analyze bench-check", flag.ExitOnError)
	basePath := fs.String("base", "", "checked-in baseline artifact (e.g. BENCH_routing.json)")
	freshPath := fs.String("fresh", "", "freshly generated artifact to gate")
	tol := fs.Float64("tol", benchgate.DefaultTolerance, "fractional tolerance band for timing/speedup fields")
	portable := fs.Bool("portable", false, "machine-independent checks only (allocs, speedups, invariants) — for CI hardware that differs from the baseline machine")
	fs.Parse(args)
	if *basePath == "" || *freshPath == "" {
		log.Fatal("bench-check: -base and -fresh are both required")
	}
	base, err := os.ReadFile(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	fresh, err := os.ReadFile(*freshPath)
	if err != nil {
		log.Fatal(err)
	}
	vs, err := benchgate.Check(base, fresh, benchgate.Options{Tolerance: *tol, Portable: *portable})
	if err != nil {
		log.Fatal(err)
	}
	mode := "full"
	if *portable {
		mode = "portable"
	}
	if len(vs) == 0 {
		fmt.Printf("PASS: %s within %s tolerance bands of %s (tol %.0f%%)\n",
			*freshPath, mode, *basePath, *tol*100)
		return
	}
	fmt.Printf("FAIL: %s regresses %s (%d violation(s), %s mode):\n", *freshPath, *basePath, len(vs), mode)
	for _, v := range vs {
		fmt.Printf("  %s\n", v)
	}
	os.Exit(1)
}

// legacyTimeline parses the old cmd/experiments text report — the
// results_small.txt format — and prints an hourly per-method timeline.
// Deprecated: the text report only carries hourly aggregates (timely
// served from Figure 9, serving teams from Figure 14); record with
// -eventlog for the per-window stream instead.
func legacyTimeline(w io.Writer, r io.Reader) error {
	timely, servingF, err := parseLegacyReport(r)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "legacy text report (deprecated: hourly aggregates only — record with -eventlog for the per-window stream; see EXPERIMENTS.md)")
	names := make([]string, 0, len(timely))
	for n := range timely {
		names = append(names, n)
	}
	for n := range servingF {
		if _, dup := timely[n]; !dup {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("no hourly series found (is this a cmd/experiments report?)")
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "\nrun %s:\n", name)
		fmt.Fprintf(w, "  %4s %8s %8s\n", "hour", "timely", "serving")
		hours := len(timely[name])
		if len(servingF[name]) > hours {
			hours = len(servingF[name])
		}
		for h := 0; h < hours; h++ {
			t, s := "-", "-"
			if h < len(timely[name]) {
				t = strconv.Itoa(timely[name][h])
			}
			if h < len(servingF[name]) {
				s = strconv.FormatFloat(servingF[name][h], 'f', 1, 64)
			}
			fmt.Fprintf(w, "  %4d %8s %8s\n", h, t, s)
		}
	}
	return nil
}

// parseLegacyReport extracts the Figure 9 (timely served per hour, int)
// and Figure 14 (serving teams per hour, float) tables from an
// experiments text report.
func parseLegacyReport(r io.Reader) (timely map[string][]int, serving map[string][]float64, err error) {
	timely = make(map[string][]int)
	serving = make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var names []string
	mode := 0 // 0 = scanning, 1 = in Figure 9, 2 = in Figure 14
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Figure 9:"):
			mode, names = 1, nil
		case strings.HasPrefix(line, "Figure 14:"):
			mode, names = 2, nil
		case mode != 0 && strings.TrimSpace(line) == "":
			mode = 0
		case mode != 0:
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			if fields[0] == "hour" {
				names = fields[1:]
				continue
			}
			if _, err := strconv.Atoi(fields[0]); err != nil || len(fields) != len(names)+1 {
				continue // not a data row
			}
			for i, name := range names {
				v, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					continue
				}
				if mode == 1 {
					timely[name] = append(timely[name], int(v))
				} else {
					serving[name] = append(serving[name], v)
				}
			}
		}
	}
	return timely, serving, sc.Err()
}

// runFigures is the original mode: Table I and Figures 2–6 (Section
// III dataset measurement) over the synthetic scenario.
func runFigures(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	scale := fs.String("scale", "mid", "scenario scale: "+core.ScaleNames)
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "all", "which output: table1, fig2..fig6, all")
	fs.Parse(args)

	cfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "building %s scenario (seed %d)...\n", *scale, *seed)
	sc, err := core.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	m := core.NewMeasurement(sc)
	want := func(name string) bool { return *out == "all" || *out == name }

	if want("table1") {
		tbl, err := m.Table1()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Table I: correlation between disaster-related factors and vehicle flow rate")
		fmt.Printf("  %-20s %-14s %-12s %-10s\n", "", "Precipitation", "Wind speed", "Altitude")
		fmt.Printf("  %-20s %14.3f %12.3f %10.3f\n", "Vehicle flow rate", tbl.Precip, tbl.Wind, tbl.Altitude)
		fmt.Printf("  (paper:             %14.3f %12.3f %10.3f)\n\n", -0.897, -0.781, 0.739)
	}
	if want("fig2") {
		f2 := m.Fig2()
		fmt.Println("Figure 2: hourly flow rate, R1 vs R2, before vs after the disaster")
		fmt.Printf("  %4s %10s %10s %10s %10s\n", "hour", "R1-before", "R1-after", "R2-before", "R2-after")
		for i, h := range f2.Hours {
			fmt.Printf("  %4d %10.2f %10.2f %10.2f %10.2f\n",
				h, f2.R1Before[i], f2.R1After[i], f2.R2Before[i], f2.R2After[i])
		}
		fmt.Println()
	}
	if want("fig3") {
		cdf := m.Fig3()
		fmt.Println("Figure 3: CDF of per-segment |before - after| flow-rate difference")
		for _, pt := range cdf.Points(12) {
			fmt.Printf("  diff >= %7.3f veh/h at P = %.2f\n", pt.X, pt.P)
		}
		fmt.Println()
	}
	if want("fig4") {
		f4 := m.Fig4()
		fmt.Println("Figure 4: region distribution of rescued people")
		total := 0
		for _, n := range f4 {
			total += n
		}
		for r := 1; r <= sc.City.NumRegions(); r++ {
			bar := ""
			if total > 0 {
				for i := 0; i < 40*f4[r]/total; i++ {
					bar += "#"
				}
			}
			fmt.Printf("  %-16s %4d %s\n", sc.City.Regions[r].Name, f4[r], bar)
		}
		fmt.Println()
	}
	if want("fig5") {
		f5 := m.Fig5()
		fmt.Println("Figure 5: region flow rate before/during/after the disaster")
		fmt.Printf("  %-16s %10s %10s %10s\n", "region", "before", "during", "after")
		for i, r := range f5.Regions {
			fmt.Printf("  %-16s %10.2f %10.2f %10.2f\n",
				sc.City.Regions[r].Name, f5.Before[i], f5.During[i], f5.After[i])
		}
		fmt.Println()
	}
	if want("fig6") {
		f6 := m.Fig6()
		fmt.Println("Figure 6: people delivered to hospitals per day")
		cfgEval := sc.Eval.Data.Config
		for d, n := range f6 {
			phase := cfgEval.PhaseOf(cfgEval.Start.AddDate(0, 0, d).Add(12 * 3600e9))
			fmt.Printf("  day %2d (%s): %4d\n", d, phase, n)
		}
		fmt.Println()
	}
}
