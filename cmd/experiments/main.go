// Command experiments regenerates the paper's evaluation figures
// (Figures 9–16): it builds the scenario, trains the SVM and the RL
// dispatcher, runs MobiRescue and both baselines over the evaluation
// day, and prints every figure's series.
//
// Usage:
//
//	experiments [-scale small|mid|full] [-episodes N] [-teams N] [-seed S] [-workers N] [-train-workers N] [-train-actors N] [-save-policy f] [-load-policy f] [-fig all|9|...|16] [-chaos profile] [-chaos-seed S] [-eventlog f] [-eventlog-timing] [-decide-deadline d] [-snapshot-dir d] [-snapshot-every N] [-snapshot-keep K] [-resume] [-obs addr] [-cpuprofile f] [-memprofile f]
//
// RL training uses the parallel actor–learner pipeline: -train-actors
// logical actors (default 4) roll out under the -train-workers
// concurrency bound; the trained policy is byte-identical for any
// -train-workers value. -load-policy warm-starts from a checkpoint
// (train on top with -episodes, or pass -episodes -1 to skip training);
// -save-policy writes the trained state for later runs.
//
// -eventlog records the whole session — training rounds, the fault-free
// comparison, and any chaos re-run — as one flight-recorder stream
// (structured JSONL; see README "Flight recorder & run diffing") for
// `analyze timeline` / `analyze diff`. The manifest records the
// configuration at log creation (chaos off; the chaos re-run's fault
// events still appear in the stream).
//
// -chaos re-runs the comparison under deterministic fault injection
// after the fault-free pass and prints each method's degradation
// (resilience report); the same -chaos-seed reproduces the same run.
//
// -snapshot-dir makes the expensive training phase crash-safe: a
// checksummed snapshot is installed after every -snapshot-every-th
// training round (keeping the newest -snapshot-keep), and -resume with
// the same flags continues from the latest valid one with a
// byte-identical -eventlog stream. The three-method comparison is not
// snapshotted mid-run: a resume after training re-executes it in full,
// deterministically. SIGINT/SIGTERM request a graceful stop — the run
// finishes its current round, installs a final snapshot, flushes the
// event log, and exits with code 3. A resume of a finished run (the
// terminal snapshot says so) exits 0 without re-running anything.
// -decide-deadline overrides the resilient dispatcher's per-round
// Decide deadline (0 keeps the 5s default); expirations emit a typed
// "deadline" event.
//
// The binary always collects metrics and spans and prints an end-of-run
// report (top spans, key counters) on stderr. With -obs it additionally
// serves /metrics, /healthz, /debug/vars and /debug/pprof/* live during
// the run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"strings"
	"syscall"
	"time"

	"mobirescue/internal/chaos"
	"mobirescue/internal/core"
	"mobirescue/internal/ilp"
	"mobirescue/internal/obs"
	"mobirescue/internal/obs/eventlog"
	"mobirescue/internal/sim"
	"mobirescue/internal/snapshot"
	"mobirescue/internal/stats"
)

func main() {
	var (
		scale    = flag.String("scale", "mid", "scenario scale: "+core.ScaleNames)
		episodes = flag.Int("episodes", 0, "RL training episodes (0 = config default, negative = skip training)")
		teams    = flag.Int("teams", 0, "fleet size (0 = max daily requests, like the paper)")
		seed     = flag.Int64("seed", 1, "random seed")
		fig      = flag.String("fig", "all", "which figure to print: all, 9..16, latency")
		solver   = flag.String("assign-solver", "exact", "assignment solver for dispatcher cost matrices: "+ilp.SolverNames)
		chaosArg = flag.String("chaos", "off", "chaos profile: "+chaos.ProfileNames)
		chaosSd  = flag.Int64("chaos-seed", 1, "chaos fault-schedule seed")
		obsAddr  = flag.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080)")
		workers  = flag.Int("workers", 0, "parallelism bound for routing prefetch and the three comparison runs (0 = GOMAXPROCS, 1 = serial; results are identical for any value)")
		trainWk  = flag.Int("train-workers", 0, "parallel rollout bound for RL training (0 = -workers, then GOMAXPROCS; the trained policy is identical for any value)")
		trainAc  = flag.Int("train-actors", 0, "logical actor count for RL training (0 = default 4; changes the training experiment, not just its speed)")
		savePol  = flag.String("save-policy", "", "write the trained policy checkpoint to this file")
		loadPol  = flag.String("load-policy", "", "warm-start the policy from this checkpoint before training")
		evlogF   = flag.String("eventlog", "", "record the flight-recorder event stream (JSONL) to this file")
		evlogT   = flag.Bool("eventlog-timing", false, "include wall-clock fields in -eventlog (breaks cross-run byte-identity)")
		decideDl = flag.Duration("decide-deadline", 0, "resilient dispatcher per-round Decide deadline (0 = default 5s); expirations emit a typed deadline event")
		snapDir  = flag.String("snapshot-dir", "", "install crash-safe snapshots of the training phase in this directory (see -resume)")
		snapEv   = flag.Int("snapshot-every", 1, "snapshot cadence in training rounds (with -snapshot-dir)")
		snapKeep = flag.Int("snapshot-keep", snapshot.DefaultKeep, "newest snapshots to keep in -snapshot-dir")
		resume   = flag.Bool("resume", false, "resume from the latest valid snapshot in -snapshot-dir (same flags as the original run)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocs/heap profile to this file at exit")
	)
	flag.Parse()
	logger := obs.NewLogger(os.Stderr, slog.LevelInfo, slog.String("cmd", "experiments"))

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(logger, err)
		}
		defer stop()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				logger.Warn("writing mem profile", slog.Any("err", err))
			}
		}()
	}

	reg := obs.NewRegistry()
	reg.PublishExpvar("mobirescue")
	tracer := obs.NewTracer()
	ctx := obs.ContextWithTracer(context.Background(), tracer)
	if *obsAddr != "" {
		server, err := obs.StartServer(*obsAddr, reg)
		if err != nil {
			fatal(logger, err)
		}
		defer server.Close()
		logger.Info("observability server listening", slog.String("addr", server.Addr()))
	}

	sc, sys, err := buildSystem(ctx, *scale, *seed, *teams, *workers, *trainWk, *trainAc, *savePol, *solver, reg, logger)
	if err != nil {
		fatal(logger, err)
	}
	sys.Config.DecideTimeout = *decideDl
	defer obs.WriteReport(os.Stderr, reg, tracer)

	// Durability: snapshots cover the training phase; the comparison
	// re-executes deterministically on resume. Training snapshots are
	// keyed to the MobiRescue method, matching RunMethodDurable's.
	var (
		durable core.Durability
		snapSt  *snapshot.RunState
	)
	if *snapDir != "" {
		mgr, err := snapshot.NewManager(*snapDir, *snapKeep)
		if err != nil {
			fatal(logger, err)
		}
		durable = core.Durability{
			Mgr:        mgr,
			Every:      *snapEv,
			Stop:       snapshot.GracefulStop(os.Interrupt, syscall.SIGTERM),
			ConfigHash: core.ConfigHash(sc.Config),
			Scale:      *scale,
		}
		if *resume {
			st, path, skipped, err := snapshot.Latest(*snapDir)
			for name, serr := range skipped {
				logger.Warn("skipping damaged snapshot", slog.String("file", name), slog.Any("err", serr))
			}
			switch {
			case errors.Is(err, snapshot.ErrNoSnapshot):
				logger.Info("no valid snapshot; starting fresh", slog.String("dir", *snapDir))
			case err != nil:
				fatal(logger, err)
			default:
				if err := st.Validate(durable.ConfigHash, *seed, "MobiRescue"); err != nil {
					fatal(logger, err)
				}
				snapSt = st
				logger.Info("resuming from snapshot", slog.String("path", path),
					slog.String("phase", st.Phase), slog.Int("train_rounds", st.TrainRounds))
			}
		}
	}

	var elog *eventlog.Log
	closeLog := func() {}
	if *evlogF != "" {
		if snapSt != nil {
			// Truncate back to the snapshot's durability cursor; the resumed
			// run re-executes (and re-appends) everything after it.
			elog, err = eventlog.OpenAppend(*evlogF, snapSt.LogOffset, snapSt.LogEvents,
				eventlog.Options{Timing: *evlogT})
		} else {
			elog, err = eventlog.Create(*evlogF, sys.BuildManifest(*scale, sc.Config),
				eventlog.Options{Timing: *evlogT})
		}
		if err != nil {
			fatal(logger, err)
		}
		elog.EnableMetrics(reg)
		sys.SetEventLog(elog)
		closeLog = func() {
			events, bytes, drops := elog.Stats()
			if err := elog.Close(); err != nil {
				logger.Warn("closing event log", slog.Any("err", err))
			}
			logger.Info("event log written", slog.String("path", *evlogF),
				slog.Int64("events", events), slog.Int64("bytes", bytes), slog.Int64("drops", drops))
		}
		defer closeLog()
	}
	if snapSt != nil && snapSt.Phase == snapshot.PhaseDone {
		logger.Info("run already complete; nothing to resume", slog.String("dir", *snapDir))
		return
	}
	fmt.Printf("# scenario: %d people, %d landmarks, %d segments, %d teams\n",
		len(sc.Eval.Data.People), sc.City.Graph.NumLandmarks(), sc.City.Graph.NumSegments(), sys.Teams)
	fmt.Printf("# eval day %d (peak), %d ground-truth requests\n",
		sc.Eval.PeakRequestDay(), len(core.RequestsForDay(sc.Eval, sc.Eval.PeakRequestDay())))

	if *loadPol != "" {
		n, err := sys.LoadPolicy(*loadPol)
		if err != nil {
			fatal(logger, err)
		}
		fmt.Printf("# warm-started policy from %s (%d episodes)\n", *loadPol, n)
	}
	var trainRewards []float64
	if *episodes >= 0 {
		start := time.Now()
		switch {
		case snapSt != nil && snapSt.Phase == snapshot.PhaseEval:
			fatal(logger, fmt.Errorf("snapshot is mid-evaluation from a single-method run; resume it with mobirescue -resume"))
		case snapSt != nil && snapSt.Phase == snapshot.PhaseTrained:
			// Training finished before the crash: restore the learner and
			// skip straight to the comparison, which re-executes in full.
			trainRewards = snapSt.TrainRewards
			if len(snapSt.LearnerState) > 0 {
				if _, err := sys.RestoreLearnerState(snapSt.LearnerState); err != nil {
					fatal(logger, err)
				}
			}
			logger.Info("training restored from snapshot",
				slog.Uint64("episodes", sys.TrainedEpisodes()))
		case *snapDir != "":
			trainRewards, err = sys.TrainRLParallelDurable(*episodes, durable, snapSt)
			if err == nil {
				err = sys.InstallTrained(durable, "MobiRescue", trainRewards)
			}
			switch {
			case errors.Is(err, snapshot.ErrStopRequested):
				logger.Info("graceful stop: final snapshot installed, event log flushed",
					slog.String("dir", *snapDir), slog.Int("exit", snapshot.StopExitCode))
				closeLog()
				os.Exit(snapshot.StopExitCode)
			case err != nil:
				fatal(logger, err)
			}
		default:
			trainRewards, err = sys.TrainRLParallel(*episodes)
			if err != nil {
				fatal(logger, err)
			}
		}
		fmt.Printf("# trained RL for %d episodes in %v (timely served per episode: %v)\n",
			len(trainRewards), time.Since(start).Round(time.Second), trainRewards)
	}
	if *savePol != "" {
		if err := sys.SavePolicy(*savePol); err != nil {
			fatal(logger, err)
		}
		fmt.Printf("# policy checkpoint written to %s (%d episodes)\n", *savePol, sys.TrainedEpisodes())
	}

	cmp, err := sys.RunComparison()
	if err != nil {
		fatal(logger, err)
	}
	want := func(name string) bool { return *fig == "all" || *fig == name }

	if want("9") {
		printHourlyInt("Figure 9: timely served rescue requests per hour", cmp.Fig9())
	}
	if want("10") {
		printCDFs("Figure 10: CDF of timely served requests per team", cmp.Fig10(), "requests")
	}
	if want("11") {
		printHourlyFloat("Figure 11: mean driving delay per hour (s)", cmp.Fig11())
	}
	if want("12") {
		printCDFs("Figure 12: CDF of driving delays (s)", cmp.Fig12(), "seconds")
	}
	if want("13") {
		printCDFs("Figure 13: CDF of rescue timeliness (s)", cmp.Fig13(), "seconds")
	}
	if want("14") {
		printHourlyFloat("Figure 14: serving rescue teams per hour", cmp.Fig14())
	}
	if want("15") || want("16") {
		pq, err := sys.PredictionQuality()
		if err != nil {
			fatal(logger, err)
		}
		if want("15") {
			printCDFs("Figure 15: CDF of per-segment prediction accuracy", map[string]*stats.CDF{
				"MobiRescue(SVM)": pq.SVMAccuracy,
				"Rescue(TSA)":     pq.TSAAccuracy,
			}, "accuracy")
			fmt.Printf("overall accuracy: SVM %.3f vs TSA %.3f\n\n",
				pq.SVMOverall.Accuracy(), pq.TSAOverall.Accuracy())
		}
		if want("16") {
			printCDFs("Figure 16: CDF of per-segment prediction precision", map[string]*stats.CDF{
				"MobiRescue(SVM)": pq.SVMPrecision,
				"Rescue(TSA)":     pq.TSAPrecision,
			}, "precision")
			fmt.Printf("overall precision: SVM %.3f vs TSA %.3f\n\n",
				pq.SVMOverall.Precision(), pq.TSAOverall.Precision())
		}
	}
	if want("latency") || *fig == "all" {
		fmt.Println("Dispatch computation delay (Section V-C3):")
		for _, name := range core.MethodNames {
			fmt.Printf("  %-11s %v per round\n", name, cmp.Results[name].MeanComputeDelay().Round(100*time.Millisecond))
		}
		fmt.Println()
	}

	fmt.Println("Summary (evaluation day):")
	fmt.Printf("  %-11s %8s %8s %14s %14s %12s\n", "method", "served", "timely", "medDelay(s)", "medTimeli(s)", "meanServing")
	for _, name := range core.MethodNames {
		res := cmp.Results[name]
		delays := stats.NewCDF(res.DrivingDelaysSeconds())
		timeli := stats.NewCDF(res.TimelinessSeconds())
		medD, _ := delays.Quantile(0.5)
		medT, _ := timeli.Quantile(0.5)
		meanServing := 0.0
		for _, r := range res.Rounds {
			meanServing += float64(r.Serving)
		}
		meanServing /= float64(len(res.Rounds))
		fmt.Printf("  %-11s %8d %8d %14.0f %14.0f %12.1f\n",
			name, res.TotalServed(), res.TotalTimelyServed(), medD, medT, meanServing)
	}

	profile, err := chaos.ProfileByName(*chaosArg)
	if err != nil {
		fatal(logger, err)
	}
	if profile.Enabled() {
		if err := runChaosComparison(sys, cmp, profile, *chaosSd, logger); err != nil {
			fatal(logger, err)
		}
	}
	if err := sys.InstallDone(durable, "MobiRescue", trainRewards); err != nil {
		fatal(logger, err)
	}
}

// runChaosComparison re-runs the three-method comparison under the
// chaos profile and prints each method's degradation against the
// fault-free results already in base.
func runChaosComparison(sys *core.System, base *core.Comparison, profile chaos.Profile, seed int64, logger *slog.Logger) error {
	logger.Info("re-running comparison under chaos",
		slog.String("profile", profile.Name), slog.Int64("chaos-seed", seed))
	if err := sys.SetChaos(profile, seed); err != nil {
		return err
	}
	defer func() {
		if err := sys.SetChaos(chaos.Off(), 0); err != nil {
			logger.Warn("disabling chaos", slog.Any("err", err))
		}
	}()
	chaotic, err := sys.RunComparison()
	if err != nil {
		return err
	}
	fmt.Printf("\nChaos comparison (profile %s, seed %d):\n", profile.Name, seed)
	for _, name := range core.MethodNames {
		if err := sim.WriteResilienceReport(os.Stdout, base.Results[name], chaotic.Results[name]); err != nil {
			return err
		}
	}
	return nil
}

// buildSystem constructs scenario and system at the requested scale,
// wiring the metrics registry and logger through both.
func buildSystem(ctx context.Context, scale string, seed int64, teams, workers, trainWorkers, trainActors int, checkpointPath, solver string, reg *obs.Registry, logger *slog.Logger) (*core.Scenario, *core.System, error) {
	scCfg, err := core.ScenarioConfigForScale(scale)
	if err != nil {
		return nil, nil, err
	}
	scCfg.Seed = seed
	logger.Info("building scenario", slog.String("scale", scale), slog.Int64("seed", seed))
	sc, err := core.BuildScenarioContext(ctx, scCfg)
	if err != nil {
		return nil, nil, err
	}
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Seed = seed
	sysCfg.Teams = teams
	sysCfg.Workers = workers
	sysCfg.TrainWorkers = trainWorkers
	sysCfg.TrainActors = trainActors
	sysCfg.CheckpointPath = checkpointPath
	sysCfg.AssignmentSolver = solver
	sysCfg.Metrics = reg
	sysCfg.Logger = logger
	sys, err := core.NewSystemContext(ctx, sc, sysCfg)
	if err != nil {
		return nil, nil, err
	}
	return sc, sys, nil
}

func fatal(logger *slog.Logger, err error) {
	logger.Error(err.Error())
	os.Exit(1)
}

func sortedNames(m map[string][]int, mf map[string][]float64, mc map[string]*stats.CDF) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	for n := range mf {
		names = append(names, n)
	}
	for n := range mc {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func printHourlyInt(title string, series map[string][]int) {
	fmt.Println(title)
	names := sortedNames(series, nil, nil)
	fmt.Printf("  hour %s\n", strings.Join(names, " "))
	hours := 0
	for _, s := range series {
		if len(s) > hours {
			hours = len(s)
		}
	}
	for h := 0; h < hours; h++ {
		fmt.Printf("  %4d", h)
		for _, n := range names {
			fmt.Printf(" %*d", len(n), series[n][h])
		}
		fmt.Println()
	}
	fmt.Println()
}

func printHourlyFloat(title string, series map[string][]float64) {
	fmt.Println(title)
	names := sortedNames(nil, series, nil)
	fmt.Printf("  hour %s\n", strings.Join(names, " "))
	hours := 0
	for _, s := range series {
		if len(s) > hours {
			hours = len(s)
		}
	}
	for h := 0; h < hours; h++ {
		fmt.Printf("  %4d", h)
		for _, n := range names {
			fmt.Printf(" %*.1f", len(n), series[n][h])
		}
		fmt.Println()
	}
	fmt.Println()
}

func printCDFs(title string, cdfs map[string]*stats.CDF, unit string) {
	fmt.Println(title)
	names := sortedNames(nil, nil, cdfs)
	quantiles := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	fmt.Printf("  %-18s", "quantile("+unit+")")
	for _, q := range quantiles {
		fmt.Printf(" %8.0f%%", q*100)
	}
	fmt.Println()
	for _, n := range names {
		fmt.Printf("  %-18s", n)
		for _, q := range quantiles {
			v, err := cdfs[n].Quantile(q)
			if err != nil {
				fmt.Printf(" %9s", "-")
				continue
			}
			fmt.Printf(" %9.2f", v)
		}
		fmt.Println()
	}
	fmt.Println()
}
