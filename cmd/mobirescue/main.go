// Command mobirescue runs one dispatch method over the evaluation day and
// prints its outcome — the quickest way to exercise the full system.
//
// Usage:
//
//	mobirescue [-method mr|rescue|schedule] [-scale small|mid|full] [-episodes N] [-teams N] [-seed S] [-workers N] [-train-workers N] [-train-actors N] [-save-policy f] [-load-policy f] [-checkpoint-every N] [-chaos profile] [-chaos-seed S] [-eventlog f] [-eventlog-timing] [-obs addr] [-report] [-cpuprofile f] [-memprofile f]
//
// With -obs the process serves /metrics (Prometheus text format),
// /healthz, /debug/vars, and /debug/pprof/* on the given address for the
// whole run, then keeps serving until interrupted so the final metric
// values stay scrapeable. -report prints the span/metric report on
// stderr at the end of the run (implied by -obs).
//
// -eventlog records the run's flight-recorder stream (structured JSONL
// events from every layer — see README "Flight recorder & run diffing")
// to the given file; feed it to `analyze timeline` or `analyze diff`.
// The log is byte-identical for any -workers value. -eventlog-timing
// additionally records wall-clock fields (Decide latency, shared-cache
// snapshots) at the cost of that byte-identity.
//
// -chaos enables deterministic fault injection (flash-flood surges,
// vehicle breakdowns, sensing and dispatcher faults) and wraps the
// dispatcher in the resilient degraded-mode shell; the same -chaos-seed
// reproduces the same chaotic run.
//
// RL training (method mr) runs the parallel actor–learner pipeline:
// -train-actors logical actors (default 4; fixes seeds and merge order,
// so change it only to change the experiment) roll out concurrently
// under the -train-workers bound. The trained policy is byte-identical
// for any -train-workers value. -save-policy writes a versioned,
// checksummed checkpoint after training (and every -checkpoint-every
// rounds during it); -load-policy warm-starts from one, skipping
// training when -episodes is 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"time"

	"mobirescue/internal/chaos"
	"mobirescue/internal/core"
	"mobirescue/internal/obs"
	"mobirescue/internal/obs/eventlog"
	"mobirescue/internal/stats"
)

func main() {
	var (
		method   = flag.String("method", "mr", "dispatch method: mr, rescue, or schedule")
		scale    = flag.String("scale", "small", "scenario scale: "+core.ScaleNames)
		episodes = flag.Int("episodes", 6, "RL training episodes (mr only)")
		teams    = flag.Int("teams", 0, "fleet size (0 = max daily requests)")
		seed     = flag.Int64("seed", 1, "random seed")
		chaosArg = flag.String("chaos", "off", "chaos profile: "+chaos.ProfileNames)
		chaosSd  = flag.Int64("chaos-seed", 1, "chaos fault-schedule seed")
		obsAddr  = flag.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080)")
		report   = flag.Bool("report", false, "print the span/metric report on stderr after the run")
		verbose  = flag.Bool("v", false, "verbose (debug-level) logging")
		workers  = flag.Int("workers", 0, "parallelism bound for routing prefetch and eval runs (0 = GOMAXPROCS, 1 = serial; results are identical for any value)")
		trainWk  = flag.Int("train-workers", 0, "parallel rollout bound for RL training (0 = -workers, then GOMAXPROCS; the trained policy is identical for any value)")
		trainAc  = flag.Int("train-actors", 0, "logical actor count for RL training (0 = default 4; changes the training experiment, not just its speed)")
		savePol  = flag.String("save-policy", "", "write the trained policy checkpoint to this file (also checkpointed during training)")
		loadPol  = flag.String("load-policy", "", "warm-start the policy from this checkpoint before training/evaluation")
		ckptEv   = flag.Int("checkpoint-every", 0, "also checkpoint to -save-policy every N training rounds (0 = only at the end)")
		evlogF   = flag.String("eventlog", "", "record the flight-recorder event stream (JSONL) to this file")
		evlogT   = flag.Bool("eventlog-timing", false, "include wall-clock fields in -eventlog (breaks cross-run byte-identity)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocs/heap profile to this file at exit")
	)
	flag.Parse()
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level, slog.String("cmd", "mobirescue"))

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(logger, err)
		}
		defer stop()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				logger.Warn("writing mem profile", slog.Any("err", err))
			}
		}()
	}

	cfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		fatal(logger, err)
	}
	cfg.Seed = *seed

	// Observability: a registry + tracer when -obs or -report is set.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
		ctx    = context.Background()
	)
	if *obsAddr != "" || *report {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer()
		ctx = obs.ContextWithTracer(ctx, tracer)
		reg.PublishExpvar("mobirescue")
	}
	var server *obs.Server
	if *obsAddr != "" {
		server, err = obs.StartServer(*obsAddr, reg)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("observability server listening",
			slog.String("addr", server.Addr()),
			slog.String("metrics", "http://"+server.Addr()+"/metrics"))
	}

	logger.Info("building scenario", slog.String("scale", *scale), slog.Int64("seed", *seed))
	sc, err := core.BuildScenarioContext(ctx, cfg)
	if err != nil {
		fatal(logger, err)
	}
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Seed = *seed
	sysCfg.Teams = *teams
	sysCfg.Workers = *workers
	sysCfg.TrainWorkers = *trainWk
	sysCfg.TrainActors = *trainAc
	sysCfg.CheckpointPath = *savePol
	sysCfg.CheckpointEvery = *ckptEv
	sysCfg.Metrics = reg
	sysCfg.Logger = logger
	sys, err := core.NewSystemContext(ctx, sc, sysCfg)
	if err != nil {
		fatal(logger, err)
	}
	profile, err := chaos.ProfileByName(*chaosArg)
	if err != nil {
		fatal(logger, err)
	}
	if profile.Enabled() {
		if err := sys.SetChaos(profile, *chaosSd); err != nil {
			fatal(logger, err)
		}
		logger.Info("chaos enabled",
			slog.String("profile", profile.Name), slog.Int64("chaos-seed", *chaosSd))
	}
	if *evlogF != "" {
		elog, err := eventlog.Create(*evlogF, sys.BuildManifest(*scale, cfg),
			eventlog.Options{Timing: *evlogT})
		if err != nil {
			fatal(logger, err)
		}
		elog.EnableMetrics(reg)
		sys.SetEventLog(elog)
		defer func() {
			events, bytes, drops := elog.Stats()
			if err := elog.Close(); err != nil {
				logger.Warn("closing event log", slog.Any("err", err))
			}
			logger.Info("event log written", slog.String("path", *evlogF),
				slog.Int64("events", events), slog.Int64("bytes", bytes), slog.Int64("drops", drops))
		}()
	}

	if *loadPol != "" {
		n, err := sys.LoadPolicy(*loadPol)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("policy warm-started",
			slog.String("path", *loadPol), slog.Uint64("episodes", n))
	}
	switch *method {
	case "mr", "mobirescue", "MobiRescue":
		if *episodes > 0 {
			start := time.Now()
			returns, err := sys.TrainRLParallel(*episodes)
			if err != nil {
				fatal(logger, err)
			}
			logger.Info("RL training complete",
				slog.Int("episodes", len(returns)),
				slog.Uint64("total_episodes", sys.TrainedEpisodes()),
				slog.Duration("elapsed", time.Since(start).Round(time.Second)))
		}
	}
	res, err := sys.RunMethod(*method, 0)
	if err != nil {
		fatal(logger, err)
	}
	if *savePol != "" {
		if err := sys.SavePolicy(*savePol); err != nil {
			fatal(logger, err)
		}
		logger.Info("policy checkpoint written",
			slog.String("path", *savePol), slog.Uint64("episodes", sys.TrainedEpisodes()))
	}
	fmt.Printf("method:        %s\n", res.Method)
	fmt.Printf("requests:      %d\n", len(res.Requests))
	fmt.Printf("served:        %d\n", res.TotalServed())
	fmt.Printf("timely served: %d (within %v)\n", res.TotalTimelyServed(), res.Config.TimelyThreshold)
	fmt.Printf("compute delay: %v per round\n", res.MeanComputeDelay().Round(100*time.Millisecond))
	if delays := res.DrivingDelaysSeconds(); len(delays) > 0 {
		cdf := stats.NewCDF(delays)
		med, _ := cdf.Quantile(0.5)
		p90, _ := cdf.Quantile(0.9)
		fmt.Printf("driving delay: median %.0fs, p90 %.0fs\n", med, p90)
	}
	if tl := res.TimelinessSeconds(); len(tl) > 0 {
		cdf := stats.NewCDF(tl)
		med, _ := cdf.Quantile(0.5)
		p90, _ := cdf.Quantile(0.9)
		fmt.Printf("timeliness:    median %.0fs, p90 %.0fs\n", med, p90)
	}
	if profile.Enabled() || res.Resilience.Any() {
		fmt.Printf("resilience:    %s\n", res.Resilience)
	}

	if *report || *obsAddr != "" {
		obs.WriteReport(os.Stderr, reg, tracer)
	}
	if server != nil {
		// Keep serving so the final metric values stay scrapeable.
		logger.Info("run complete; serving metrics until interrupted",
			slog.String("addr", server.Addr()))
		sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		<-sigCtx.Done()
		stop()
		if err := server.Close(); err != nil {
			logger.Warn("closing observability server", slog.Any("err", err))
		}
	}
}

func fatal(logger *slog.Logger, err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
