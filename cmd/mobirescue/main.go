// Command mobirescue runs one dispatch method over the evaluation day and
// prints its outcome — the quickest way to exercise the full system.
//
// Usage:
//
//	mobirescue [-method mr|rescue|schedule] [-scale small|mid|full] [-episodes N] [-teams N] [-seed S]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mobirescue/internal/core"
	"mobirescue/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mobirescue: ")
	var (
		method   = flag.String("method", "mr", "dispatch method: mr, rescue, or schedule")
		scale    = flag.String("scale", "small", "scenario scale: small, mid, or full")
		episodes = flag.Int("episodes", 6, "RL training episodes (mr only)")
		teams    = flag.Int("teams", 0, "fleet size (0 = max daily requests)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var cfg core.ScenarioConfig
	switch *scale {
	case "small":
		cfg = core.SmallScenarioConfig()
	case "mid":
		cfg = core.SmallScenarioConfig()
		cfg.City.GridRows, cfg.City.GridCols = 6, 6
		cfg.People = 2000
	case "full":
		cfg = core.DefaultScenarioConfig()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	fmt.Fprintf(os.Stderr, "building %s scenario...\n", *scale)
	sc, err := core.BuildScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Seed = *seed
	sysCfg.Teams = *teams
	sys, err := core.NewSystem(sc, sysCfg)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.RunMethod(*method, *episodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("method:        %s\n", res.Method)
	fmt.Printf("requests:      %d\n", len(res.Requests))
	fmt.Printf("served:        %d\n", res.TotalServed())
	fmt.Printf("timely served: %d (within %v)\n", res.TotalTimelyServed(), res.Config.TimelyThreshold)
	fmt.Printf("compute delay: %v per round\n", res.MeanComputeDelay().Round(100*time.Millisecond))
	if delays := res.DrivingDelaysSeconds(); len(delays) > 0 {
		cdf := stats.NewCDF(delays)
		med, _ := cdf.Quantile(0.5)
		p90, _ := cdf.Quantile(0.9)
		fmt.Printf("driving delay: median %.0fs, p90 %.0fs\n", med, p90)
	}
	if tl := res.TimelinessSeconds(); len(tl) > 0 {
		cdf := stats.NewCDF(tl)
		med, _ := cdf.Quantile(0.5)
		p90, _ := cdf.Quantile(0.9)
		fmt.Printf("timeliness:    median %.0fs, p90 %.0fs\n", med, p90)
	}
}
