// Command mobirescue runs one dispatch method over the evaluation day and
// prints its outcome — the quickest way to exercise the full system.
//
// Usage:
//
//	mobirescue [-method mr|rescue|schedule] [-scale small|mid|full] [-episodes N] [-teams N] [-seed S] [-workers N] [-train-workers N] [-train-actors N] [-save-policy f] [-load-policy f] [-checkpoint-every N] [-chaos profile] [-chaos-seed S] [-decide-deadline d] [-eventlog f] [-eventlog-timing] [-snapshot-dir d] [-snapshot-every N] [-snapshot-keep N] [-resume] [-obs addr] [-report] [-cpuprofile f] [-memprofile f]
//
// With -obs the process serves /metrics (Prometheus text format),
// /healthz, /debug/vars, and /debug/pprof/* on the given address for the
// whole run, then keeps serving until interrupted so the final metric
// values stay scrapeable. -report prints the span/metric report on
// stderr at the end of the run (implied by -obs).
//
// -eventlog records the run's flight-recorder stream (structured JSONL
// events from every layer — see README "Flight recorder & run diffing")
// to the given file; feed it to `analyze timeline` or `analyze diff`.
// The log is byte-identical for any -workers value. -eventlog-timing
// additionally records wall-clock fields (Decide latency, shared-cache
// snapshots) at the cost of that byte-identity.
//
// -chaos enables deterministic fault injection (flash-flood surges,
// vehicle breakdowns, sensing and dispatcher faults) and wraps the
// dispatcher in the resilient degraded-mode shell; the same -chaos-seed
// reproduces the same chaotic run. -decide-deadline overrides the
// wrapper's wall-clock Decide deadline (default 5 s); an expiration is
// recorded as a typed deadline event in the flight recorder.
//
// -snapshot-dir makes the run crash-safe (see README "Durability &
// crash recovery"): a complete run snapshot is installed atomically at
// every -snapshot-every-th window/training-round boundary, keeping the
// last -snapshot-keep generations. -resume continues from the latest
// valid snapshot — the resumed run's event log is byte-identical to an
// uninterrupted one — and starts fresh when none exists. On SIGINT or
// SIGTERM a snapshotting run finishes its current window, installs a
// final snapshot, flushes the event log, and exits with code 3; a
// second signal kills the process immediately.
//
// RL training (method mr) runs the parallel actor–learner pipeline:
// -train-actors logical actors (default 4; fixes seeds and merge order,
// so change it only to change the experiment) roll out concurrently
// under the -train-workers bound. The trained policy is byte-identical
// for any -train-workers value. -save-policy writes a versioned,
// checksummed checkpoint after training (and every -checkpoint-every
// rounds during it); -load-policy warm-starts from one, skipping
// training when -episodes is 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mobirescue/internal/chaos"
	"mobirescue/internal/core"
	"mobirescue/internal/ilp"
	"mobirescue/internal/obs"
	"mobirescue/internal/obs/eventlog"
	"mobirescue/internal/sim"
	"mobirescue/internal/snapshot"
	"mobirescue/internal/stats"
)

func main() {
	var (
		method   = flag.String("method", "mr", "dispatch method: mr, rescue, or schedule")
		scale    = flag.String("scale", "small", "scenario scale: "+core.ScaleNames)
		episodes = flag.Int("episodes", 6, "RL training episodes (mr only)")
		teams    = flag.Int("teams", 0, "fleet size (0 = max daily requests)")
		seed     = flag.Int64("seed", 1, "random seed")
		solver   = flag.String("assign-solver", "exact", "assignment solver for dispatcher cost matrices: "+ilp.SolverNames)
		chaosArg = flag.String("chaos", "off", "chaos profile: "+chaos.ProfileNames)
		chaosSd  = flag.Int64("chaos-seed", 1, "chaos fault-schedule seed")
		obsAddr  = flag.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :8080)")
		report   = flag.Bool("report", false, "print the span/metric report on stderr after the run")
		verbose  = flag.Bool("v", false, "verbose (debug-level) logging")
		workers  = flag.Int("workers", 0, "parallelism bound for routing prefetch and eval runs (0 = GOMAXPROCS, 1 = serial; results are identical for any value)")
		trainWk  = flag.Int("train-workers", 0, "parallel rollout bound for RL training (0 = -workers, then GOMAXPROCS; the trained policy is identical for any value)")
		trainAc  = flag.Int("train-actors", 0, "logical actor count for RL training (0 = default 4; changes the training experiment, not just its speed)")
		savePol  = flag.String("save-policy", "", "write the trained policy checkpoint to this file (also checkpointed during training)")
		loadPol  = flag.String("load-policy", "", "warm-start the policy from this checkpoint before training/evaluation")
		ckptEv   = flag.Int("checkpoint-every", 0, "also checkpoint to -save-policy every N training rounds (0 = only at the end)")
		evlogF   = flag.String("eventlog", "", "record the flight-recorder event stream (JSONL) to this file")
		evlogT   = flag.Bool("eventlog-timing", false, "include wall-clock fields in -eventlog (breaks cross-run byte-identity)")
		snapDir  = flag.String("snapshot-dir", "", "install crash-safe run snapshots into this directory at window boundaries")
		snapEv   = flag.Int("snapshot-every", 1, "snapshot cadence in dispatch windows / training rounds")
		snapKeep = flag.Int("snapshot-keep", 0, "snapshot generations to retain (0 = default 3)")
		resume   = flag.Bool("resume", false, "resume from the latest valid snapshot in -snapshot-dir (fresh start when none)")
		decideDl = flag.Duration("decide-deadline", 0, "resilient wrapper's wall-clock Decide deadline in chaos runs (0 = default 5s)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocs/heap profile to this file at exit")
	)
	flag.Parse()
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level, slog.String("cmd", "mobirescue"))

	if *cpuProf != "" {
		stop, err := obs.StartCPUProfile(*cpuProf)
		if err != nil {
			fatal(logger, err)
		}
		defer stop()
	}
	if *memProf != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memProf); err != nil {
				logger.Warn("writing mem profile", slog.Any("err", err))
			}
		}()
	}

	cfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		fatal(logger, err)
	}
	cfg.Seed = *seed

	// Observability: a registry + tracer when -obs or -report is set.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
		ctx    = context.Background()
	)
	if *obsAddr != "" || *report {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer()
		ctx = obs.ContextWithTracer(ctx, tracer)
		reg.PublishExpvar("mobirescue")
	}
	var server *obs.Server
	if *obsAddr != "" {
		server, err = obs.StartServer(*obsAddr, reg)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("observability server listening",
			slog.String("addr", server.Addr()),
			slog.String("metrics", "http://"+server.Addr()+"/metrics"))
	}

	logger.Info("building scenario", slog.String("scale", *scale), slog.Int64("seed", *seed))
	sc, err := core.BuildScenarioContext(ctx, cfg)
	if err != nil {
		fatal(logger, err)
	}
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Seed = *seed
	sysCfg.Teams = *teams
	sysCfg.Workers = *workers
	sysCfg.TrainWorkers = *trainWk
	sysCfg.TrainActors = *trainAc
	sysCfg.CheckpointPath = *savePol
	sysCfg.CheckpointEvery = *ckptEv
	sysCfg.DecideTimeout = *decideDl
	sysCfg.AssignmentSolver = *solver
	sysCfg.Metrics = reg
	sysCfg.Logger = logger
	sys, err := core.NewSystemContext(ctx, sc, sysCfg)
	if err != nil {
		fatal(logger, err)
	}
	profile, err := chaos.ProfileByName(*chaosArg)
	if err != nil {
		fatal(logger, err)
	}
	if profile.Enabled() {
		if err := sys.SetChaos(profile, *chaosSd); err != nil {
			fatal(logger, err)
		}
		logger.Info("chaos enabled",
			slog.String("profile", profile.Name), slog.Int64("chaos-seed", *chaosSd))
	}
	// Crash-safe snapshots: build the manager, arm graceful shutdown, and
	// load the latest valid snapshot when resuming.
	var (
		durable core.Durability
		snapSt  *snapshot.RunState
	)
	if *snapDir != "" {
		mgr, err := snapshot.NewManager(*snapDir, *snapKeep)
		if err != nil {
			fatal(logger, err)
		}
		durable = core.Durability{
			Mgr:        mgr,
			Every:      *snapEv,
			Stop:       snapshot.GracefulStop(os.Interrupt, syscall.SIGTERM),
			ConfigHash: core.ConfigHash(cfg),
			Scale:      *scale,
		}
		if *resume {
			st, path, skipped, err := snapshot.Latest(*snapDir)
			for name, serr := range skipped {
				logger.Warn("skipping damaged snapshot", slog.String("file", name), slog.Any("err", serr))
			}
			switch {
			case errors.Is(err, snapshot.ErrNoSnapshot):
				logger.Info("no valid snapshot; starting fresh", slog.String("dir", *snapDir))
			case err != nil:
				fatal(logger, err)
			default:
				snapSt = st
				logger.Info("resuming from snapshot", slog.String("path", path),
					slog.String("phase", st.Phase), slog.Int("window", st.Window),
					slog.Int("train_rounds", st.TrainRounds))
			}
		}
	}

	var elog *eventlog.Log
	closeLog := func() {}
	if *evlogF != "" {
		if snapSt != nil {
			// Truncate back to the snapshot's durability cursor; the resumed
			// run re-executes (and re-appends) everything after it.
			elog, err = eventlog.OpenAppend(*evlogF, snapSt.LogOffset, snapSt.LogEvents,
				eventlog.Options{Timing: *evlogT})
		} else {
			elog, err = eventlog.Create(*evlogF, sys.BuildManifest(*scale, cfg),
				eventlog.Options{Timing: *evlogT})
		}
		if err != nil {
			fatal(logger, err)
		}
		elog.EnableMetrics(reg)
		sys.SetEventLog(elog)
		closeLog = func() {
			events, bytes, drops := elog.Stats()
			if err := elog.Close(); err != nil {
				logger.Warn("closing event log", slog.Any("err", err))
			}
			logger.Info("event log written", slog.String("path", *evlogF),
				slog.Int64("events", events), slog.Int64("bytes", bytes), slog.Int64("drops", drops))
		}
		defer closeLog()
	}

	if *loadPol != "" {
		n, err := sys.LoadPolicy(*loadPol)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("policy warm-started",
			slog.String("path", *loadPol), slog.Uint64("episodes", n))
	}
	var res *sim.Result
	if *snapDir != "" {
		start := time.Now()
		var returns []float64
		res, returns, err = sys.RunMethodDurable(*method, *episodes, durable, snapSt)
		switch {
		case errors.Is(err, snapshot.ErrStopRequested):
			logger.Info("graceful stop: final snapshot installed, event log flushed",
				slog.String("dir", *snapDir), slog.Int("exit", snapshot.StopExitCode))
			closeLog()
			os.Exit(snapshot.StopExitCode)
		case errors.Is(err, core.ErrRunComplete):
			logger.Info("run already complete; nothing to resume", slog.String("dir", *snapDir))
			return
		case err != nil:
			fatal(logger, err)
		}
		if len(returns) > 0 {
			logger.Info("RL training complete",
				slog.Int("episodes", len(returns)),
				slog.Uint64("total_episodes", sys.TrainedEpisodes()),
				slog.Duration("elapsed", time.Since(start).Round(time.Second)))
		}
	} else {
		switch *method {
		case "mr", "mobirescue", "MobiRescue":
			if *episodes > 0 {
				start := time.Now()
				returns, err := sys.TrainRLParallel(*episodes)
				if err != nil {
					fatal(logger, err)
				}
				logger.Info("RL training complete",
					slog.Int("episodes", len(returns)),
					slog.Uint64("total_episodes", sys.TrainedEpisodes()),
					slog.Duration("elapsed", time.Since(start).Round(time.Second)))
			}
		}
		res, err = sys.RunMethod(*method, 0)
		if err != nil {
			fatal(logger, err)
		}
	}
	if *savePol != "" {
		if err := sys.SavePolicy(*savePol); err != nil {
			fatal(logger, err)
		}
		logger.Info("policy checkpoint written",
			slog.String("path", *savePol), slog.Uint64("episodes", sys.TrainedEpisodes()))
	}
	fmt.Printf("method:        %s\n", res.Method)
	fmt.Printf("requests:      %d\n", len(res.Requests))
	fmt.Printf("served:        %d\n", res.TotalServed())
	fmt.Printf("timely served: %d (within %v)\n", res.TotalTimelyServed(), res.Config.TimelyThreshold)
	fmt.Printf("compute delay: %v per round\n", res.MeanComputeDelay().Round(100*time.Millisecond))
	if delays := res.DrivingDelaysSeconds(); len(delays) > 0 {
		cdf := stats.NewCDF(delays)
		med, _ := cdf.Quantile(0.5)
		p90, _ := cdf.Quantile(0.9)
		fmt.Printf("driving delay: median %.0fs, p90 %.0fs\n", med, p90)
	}
	if tl := res.TimelinessSeconds(); len(tl) > 0 {
		cdf := stats.NewCDF(tl)
		med, _ := cdf.Quantile(0.5)
		p90, _ := cdf.Quantile(0.9)
		fmt.Printf("timeliness:    median %.0fs, p90 %.0fs\n", med, p90)
	}
	if profile.Enabled() || res.Resilience.Any() {
		fmt.Printf("resilience:    %s\n", res.Resilience)
	}

	if *report || *obsAddr != "" {
		obs.WriteReport(os.Stderr, reg, tracer)
	}
	if server != nil {
		// Keep serving so the final metric values stay scrapeable.
		logger.Info("run complete; serving metrics until interrupted",
			slog.String("addr", server.Addr()))
		sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		<-sigCtx.Done()
		stop()
		if err := server.Close(); err != nil {
			logger.Warn("closing observability server", slog.Any("err", err))
		}
	}
}

func fatal(logger *slog.Logger, err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
