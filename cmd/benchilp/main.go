// Command benchilp measures the fast assignment solvers (internal/ilp)
// across the instance sweep the dispatchers actually produce — from the
// 10x10 matrices of a small scenario up to the 500x2000 shape of a
// metro-scale window — and writes BENCH_ilp.json.
//
// Every cell of the sweep (size x density) replays a drifting sequence
// of integer cost matrices, the cross-window regime warm starts are
// built for, twice:
//
//   - cold: the warm-start duals are cleared before every window, so
//     each solve pays the full ε-scaling schedule;
//   - warm: one persistent ilp.Assigner carries prices across windows.
//
// The gate-checked claims are machine-independent by construction:
//
//   - warm_start_speedup (per cell and aggregate) is the ratio of
//     auction bidding iterations cold/warm over the steady-state
//     windows (the first window has no warm state and is excluded).
//     Bids are the auction's unit of work and are deterministic for a
//     seed, so the checked-in values reproduce exactly on any machine.
//   - auction_exact_on_integer_costs: on every cell small enough to
//     cross-check (max padded dimension <= 500), both passes' totals
//     equal ilp.Hungarian's, bit-for-bit, every window; larger cells
//     assert cold == warm totals instead (both claims also hold in the
//     randomized equivalence battery this binary re-runs). Cells too
//     large for the Hungarian cross-check are logged, not silently
//     counted as verified.
//   - baseline_eval_within_10x: a steady-state warm auction solve of a
//     paper-sized baseline window (100 teams x 200 requests) costs no
//     more than 10x the MobiRescue policy's per-window inference (one
//     greedy DQN forward per team, the paper's 7-region state/action
//     shape).
//
// Wall-clock fields use *_ns_per_op names, which `analyze bench-check
// -portable` treats as informational on foreign hardware. With -smoke
// the randomized battery shrinks; the sweep itself is identical, so a
// smoke artifact gate-checks cleanly against the checked-in baseline.
//
// Usage:
//
//	go run ./cmd/benchilp -out BENCH_ilp.json [-seed 1] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"time"

	"mobirescue/internal/ilp"
	"mobirescue/internal/rl"
)

// cell is one (size, density) point of the sweep.
type cell struct {
	name    string
	rows    int
	cols    int
	infProb float64
	windows int
}

// sweep is the fixed grid. Windows shrink as instances grow so the
// whole sweep stays CI-sized; they never change between smoke and full
// runs, so every deterministic field is bit-identical across modes.
func sweep() []cell {
	sizes := []struct {
		rows, cols, windows int
	}{
		{10, 10, 8},
		{50, 50, 8},
		{100, 100, 6},
		{200, 500, 5},
		{500, 2000, 3},
	}
	densities := []struct {
		name    string
		infProb float64
	}{
		{"dense", 0},
		{"sparse", 0.3},
		{"infeasible_heavy", 0.7},
	}
	var out []cell
	for _, s := range sizes {
		for _, d := range densities {
			out = append(out, cell{
				name:    fmt.Sprintf("%dx%d_%s", s.rows, s.cols, d.name),
				rows:    s.rows,
				cols:    s.cols,
				infProb: d.infProb,
				windows: s.windows,
			})
		}
	}
	return out
}

// cellResult is one cell's measurements.
type cellResult struct {
	Name    string `json:"name"`
	Rows    int    `json:"rows"`
	Cols    int    `json:"cols"`
	Density string `json:"density"`
	Windows int    `json:"windows"`
	// Bidding iterations over the steady-state windows (2..W); the
	// deterministic unit of auction work behind the speedup claim.
	ColdBids int `json:"cold_bids"`
	WarmBids int `json:"warm_bids"`
	// WarmRestarts counts warm phases that overran the bid cap and fell
	// back to the cold schedule (expected on heavy drift, fatal to the
	// speedup if systematic).
	WarmRestarts int `json:"warm_restarts"`
	// WarmStartSpeedup = ColdBids/WarmBids; gate-checked (higher is
	// better) and exactly reproducible for a seed.
	WarmStartSpeedup float64 `json:"warm_start_speedup"`
	// HungarianVerified: every window's totals cross-checked against
	// ilp.Hungarian (only cells with padded size <= 500; larger cells
	// assert cold == warm instead).
	HungarianVerified bool `json:"hungarian_verified"`
	// Informational wall-clock (skipped by the portable gate).
	ColdNsPerOp float64 `json:"cold_ns_per_op"`
	WarmNsPerOp float64 `json:"warm_ns_per_op"`
}

// baselineEval holds the fast-baseline vs MR-inference comparison.
type baselineEval struct {
	Teams    int `json:"teams"`
	Requests int `json:"requests"`
	// MRInferenceNsPerWindow is one greedy DQN forward per team on the
	// paper's 7-region state/action shape (state 17, actions 8).
	MRInferenceNsPerWindow float64 `json:"mr_inference_ns_per_window"`
	// AuctionWarmNsPerWindow is one steady-state warm auction solve of
	// the teams x requests assignment.
	AuctionWarmNsPerWindow float64 `json:"auction_warm_ns_per_window"`
	Ratio                  float64 `json:"auction_over_mr_ratio"`
}

// report is the BENCH_ilp.json document.
type report struct {
	GeneratedAt time.Time    `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Smoke       bool         `json:"smoke"`
	Seed        int64        `json:"seed"`
	Cells       []cellResult `json:"cells"`
	// Aggregate deterministic speedup: total cold bids / total warm
	// bids over every cell's steady-state windows.
	WarmStartSpeedup   float64 `json:"warm_start_speedup"`
	WarmStartSpeedupOK bool    `json:"warm_start_speedup_ok"` // >= 1.5x
	// AuctionExactOnIntegerCosts: every cross-checked window matched
	// Hungarian exactly, and the randomized battery agreed on totals
	// and infeasibility for every integer instance.
	AuctionExactOnIntegerCosts bool         `json:"auction_exact_on_integer_costs"`
	EquivalenceTrials          int          `json:"equivalence_trials"`
	BaselineEval               baselineEval `json:"baseline_eval"`
	// BaselineEvalWithin10x: the warm auction solve keeps fast-baseline
	// evaluation within 10x of MR's per-window inference cost —
	// replacing the ~300s/solve ILP regime the paper reports.
	BaselineEvalWithin10x bool `json:"baseline_eval_within_10x"`
}

// genCost builds an integer cost matrix with the cell's infeasibility
// density. Costs stay on the exact integer path of the auction solver.
func genCost(rng *rand.Rand, rows, cols int, infProb float64) [][]float64 {
	cost := make([][]float64, rows)
	for i := range cost {
		cost[i] = make([]float64, cols)
		for j := range cost[i] {
			if rng.Float64() < infProb {
				cost[i][j] = ilp.Infeasible
			} else {
				cost[i][j] = float64(rng.Intn(1_000_000))
			}
		}
	}
	return cost
}

// drift perturbs ~20% of the finite entries in place — the
// window-to-window cost evolution warm starts exploit.
func drift(rng *rand.Rand, cost [][]float64) {
	for i := range cost {
		for j := range cost[i] {
			if cost[i][j] == ilp.Infeasible || rng.Float64() >= 0.2 {
				continue
			}
			v := cost[i][j] + float64(rng.Intn(2001)-1000)
			if v < 0 {
				v = 0
			}
			cost[i][j] = v
		}
	}
}

// identKeys returns 0..n-1 as warm-start identity keys.
func identKeys(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i)
	}
	return out
}

// runCell replays one cell's window sequence cold and warm.
func runCell(c cell, seed int64) (cellResult, error) {
	res := cellResult{
		Name: c.name, Rows: c.rows, Cols: c.cols, Windows: c.windows,
	}
	switch c.infProb {
	case 0:
		res.Density = "dense"
	case 0.3:
		res.Density = "sparse"
	default:
		res.Density = "infeasible_heavy"
	}
	size := c.rows
	if c.cols > size {
		size = c.cols
	}
	res.HungarianVerified = size <= 500

	// Both passes replay the identical cost sequence.
	rng := rand.New(rand.NewSource(seed))
	base := genCost(rng, c.rows, c.cols, c.infProb)
	windows := make([][][]float64, c.windows)
	for w := range windows {
		if w > 0 {
			drift(rng, base)
		}
		cp := make([][]float64, len(base))
		for i := range base {
			cp[i] = append([]float64(nil), base[i]...)
		}
		windows[w] = cp
	}
	rowKeys, colKeys := identKeys(c.rows), identKeys(c.cols)

	type pass struct {
		bids    int // steady-state windows only
		ns      float64
		totals  []float64
		matched []int
	}
	run := func(cold bool) (pass, error) {
		var p pass
		a := ilp.NewAssigner(ilp.SolverAuction)
		start := time.Now()
		for w, cost := range windows {
			if cold {
				a.Reset()
			}
			assign, total, err := a.Solve(cost, rowKeys, colKeys)
			if err != nil && assign == nil {
				return p, fmt.Errorf("%s window %d: %v", c.name, w, err)
			}
			p.totals = append(p.totals, total)
			n := 0
			for _, j := range assign {
				if j >= 0 {
					n++
				}
			}
			p.matched = append(p.matched, n)
			st := a.Last()
			if w > 0 {
				p.bids += st.Bids
				if !cold && st.Restarted {
					res.WarmRestarts++
				}
			}
		}
		p.ns = float64(time.Since(start).Nanoseconds()) / float64(c.windows)
		return p, nil
	}
	coldP, err := run(true)
	if err != nil {
		return res, err
	}
	warmP, err := run(false)
	if err != nil {
		return res, err
	}
	res.ColdBids, res.WarmBids = coldP.bids, warmP.bids
	res.ColdNsPerOp, res.WarmNsPerOp = coldP.ns, warmP.ns
	if warmP.bids > 0 {
		res.WarmStartSpeedup = float64(coldP.bids) / float64(warmP.bids)
	}

	// Exactness: integer costs make every auction total exactly optimal,
	// so cold, warm, and (where tractable) Hungarian must agree to the
	// bit, and all three must rescue the same number of rows.
	for w, cost := range windows {
		if coldP.totals[w] != warmP.totals[w] || coldP.matched[w] != warmP.matched[w] {
			return res, fmt.Errorf("%s window %d: cold (%v, %d matched) != warm (%v, %d matched)",
				c.name, w, coldP.totals[w], coldP.matched[w], warmP.totals[w], warmP.matched[w])
		}
		if !res.HungarianVerified {
			continue
		}
		hAssign, hTotal, hErr := ilp.Hungarian(cost)
		if hErr != nil && hAssign == nil {
			return res, fmt.Errorf("%s window %d: hungarian: %v", c.name, w, hErr)
		}
		hMatched := 0
		for _, j := range hAssign {
			if j >= 0 {
				hMatched++
			}
		}
		if hTotal != coldP.totals[w] || hMatched != coldP.matched[w] {
			return res, fmt.Errorf("%s window %d: auction (%v, %d matched) != hungarian (%v, %d matched)",
				c.name, w, coldP.totals[w], coldP.matched[w], hTotal, hMatched)
		}
	}
	return res, nil
}

// equivalenceBattery re-runs the randomized auction-vs-Hungarian
// cross-check over small instances with mixed shapes, densities, and
// non-integer costs (where agreement is within float tolerance rather
// than exact). Returns the trial count; any disagreement is fatal.
func equivalenceBattery(seed int64, trials int) (int, error) {
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < trials; t++ {
		rows, cols := 1+rng.Intn(12), 1+rng.Intn(12)
		infProb := []float64{0, 0.2, 0.5}[rng.Intn(3)]
		cost := genCost(rng, rows, cols, infProb)
		aAssign, aTotal, aErr := ilp.Auction(cost)
		hAssign, hTotal, hErr := ilp.Hungarian(cost)
		if (aErr != nil) != (hErr != nil) {
			return t, fmt.Errorf("trial %d: error disagreement: auction %v, hungarian %v", t, aErr, hErr)
		}
		if aErr != nil {
			continue
		}
		aMatched, hMatched := 0, 0
		for _, j := range aAssign {
			if j >= 0 {
				aMatched++
			}
		}
		for _, j := range hAssign {
			if j >= 0 {
				hMatched++
			}
		}
		if aTotal != hTotal || aMatched != hMatched {
			return t, fmt.Errorf("trial %d (%dx%d inf=%.1f): auction (%v, %d) != hungarian (%v, %d)",
				t, rows, cols, infProb, aTotal, aMatched, hTotal, hMatched)
		}
	}
	return trials, nil
}

// runBaselineEval compares a steady-state warm auction solve of a
// baseline-sized window against MR's per-window policy inference.
func runBaselineEval(seed int64) (baselineEval, error) {
	const teams, requests, reps = 100, 200, 5
	be := baselineEval{Teams: teams, Requests: requests}

	// Warm the assigner on a few drifted windows, then time solves in
	// the steady-state regime.
	rng := rand.New(rand.NewSource(seed))
	cost := genCost(rng, teams, requests, 0.1)
	rowKeys, colKeys := identKeys(teams), identKeys(requests)
	a := ilp.NewAssigner(ilp.SolverAuction)
	for w := 0; w < 3; w++ {
		if _, _, err := a.Solve(cost, rowKeys, colKeys); err != nil {
			return be, err
		}
		drift(rng, cost)
	}
	start := time.Now()
	for r := 0; r < reps; r++ {
		if _, _, err := a.Solve(cost, rowKeys, colKeys); err != nil {
			return be, err
		}
		drift(rng, cost)
	}
	be.AuctionWarmNsPerWindow = float64(time.Since(start).Nanoseconds()) / reps

	// MR inference proxy: the paper's 7-region shape — state 2*7+3,
	// actions 7+1 — one greedy forward per team per window.
	const stateSize, numActions = 2*7 + 3, 7 + 1
	dqn, err := rl.NewDQN(stateSize, numActions, rl.DefaultDQNConfig())
	if err != nil {
		return be, err
	}
	state := make([]float64, stateSize)
	start = time.Now()
	for r := 0; r < reps; r++ {
		for v := 0; v < teams; v++ {
			for i := range state {
				state[i] = float64((v+i+r)%17) / 17
			}
			dqn.Greedy(state, nil)
		}
	}
	be.MRInferenceNsPerWindow = float64(time.Since(start).Nanoseconds()) / reps
	if be.MRInferenceNsPerWindow > 0 {
		be.Ratio = be.AuctionWarmNsPerWindow / be.MRInferenceNsPerWindow
	}
	return be, nil
}

func main() {
	out := flag.String("out", "BENCH_ilp.json", "output JSON path (- for stdout)")
	seed := flag.Int64("seed", 1, "instance-generation seed")
	smoke := flag.Bool("smoke", false, "CI smoke mode: smaller randomized battery; the sweep itself is identical, so the artifact still gate-checks")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchilp: ")

	rep := report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		Seed:        *seed,
	}

	var coldBids, warmBids int
	for _, c := range sweep() {
		res, err := runCell(c, *seed)
		if err != nil {
			log.Fatal(err)
		}
		verified := "hungarian-verified"
		if !res.HungarianVerified {
			verified = "cold==warm only (too large for the Hungarian cross-check)"
		}
		fmt.Printf("benchilp: %-28s cold %8.2f ms  warm %8.2f ms  speedup %5.2fx (bids %d/%d, %d restarts, %s)\n",
			res.Name, res.ColdNsPerOp/1e6, res.WarmNsPerOp/1e6,
			res.WarmStartSpeedup, res.ColdBids, res.WarmBids, res.WarmRestarts, verified)
		coldBids += res.ColdBids
		warmBids += res.WarmBids
		rep.Cells = append(rep.Cells, res)
	}
	if warmBids > 0 {
		rep.WarmStartSpeedup = float64(coldBids) / float64(warmBids)
	}
	rep.WarmStartSpeedupOK = rep.WarmStartSpeedup >= 1.5
	if !rep.WarmStartSpeedupOK {
		log.Fatalf("aggregate warm-start speedup %.2fx is below the 1.5x bar", rep.WarmStartSpeedup)
	}

	trials := 2000
	if *smoke {
		trials = 200
	}
	n, err := equivalenceBattery(*seed, trials)
	if err != nil {
		log.Fatalf("equivalence battery failed after %d trials: %v", n, err)
	}
	rep.EquivalenceTrials = n
	rep.AuctionExactOnIntegerCosts = true // any disagreement above is fatal

	rep.BaselineEval, err = runBaselineEval(*seed)
	if err != nil {
		log.Fatal(err)
	}
	rep.BaselineEvalWithin10x = rep.BaselineEval.Ratio <= 10
	if !rep.BaselineEvalWithin10x {
		log.Fatalf("warm auction solve is %.1fx MR inference (bar: 10x)", rep.BaselineEval.Ratio)
	}
	fmt.Printf("benchilp: aggregate speedup %.2fx; %d equivalence trials; baseline eval %.2fx MR inference\n",
		rep.WarmStartSpeedup, rep.EquivalenceTrials, rep.BaselineEval.Ratio)

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchilp: wrote %s (%d cells)\n", *out, len(rep.Cells))
}
