// Command mobiserve runs the dispatch stack as a resident multi-tenant
// service: scenario sessions are created, advanced window by window,
// fed streaming rescue requests, queried, and closed over a JSON API
// (see README "Serving") mounted on the obs ops server next to
// /metrics and /debug/pprof.
//
// Usage:
//
//	mobiserve [-addr :8080] [-scale small] [-seed 1] [-teams N] [-episodes N] [-load-policy f] [-max-sessions N] [-queue-depth N] [-eventlog f] [-checkpoint f] [-resume] [-workers N] [-train-workers N] [-v]
//
// Startup builds the scenario, trains the SVM, optionally trains the
// RL policy for -episodes (or warm-starts it from -load-policy), then
// freezes the policy and serves. Every session owns its own simulator
// and dispatcher chain; the shared scenario/model state is read-only,
// so sessions are independent and deterministic — the same spec always
// replays the same run.
//
// On SIGINT or SIGTERM the server drains: every session quiesces at a
// dispatch-window boundary, the full session table is captured into
// -checkpoint (atomic, versioned, checksummed), and the process exits
// with code 3. Restarting with -resume restores every live session —
// simulator state, streamed requests, event-log buffers — and the
// continued runs are byte-identical to ones that never drained.
//
// -eventlog records every session's flight-recorder stream into one
// log (sessions append at close, in close order); feed it to `analyze
// timeline`. A second signal during the drain kills the process.
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"

	"mobirescue/internal/core"
	"mobirescue/internal/obs"
	"mobirescue/internal/obs/eventlog"
	"mobirescue/internal/serve"
	"mobirescue/internal/snapshot"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "serve the session API, /metrics, /healthz and /debug/pprof on this address")
		scale    = flag.String("scale", "small", "scenario scale: "+core.ScaleNames)
		seed     = flag.Int64("seed", 1, "scenario/model seed")
		teams    = flag.Int("teams", 0, "default fleet size for sessions that do not choose one (0 = max daily requests)")
		episodes = flag.Int("episodes", 0, "RL training episodes before serving (0 = serve the policy as loaded/initialized)")
		loadPol  = flag.String("load-policy", "", "warm-start the MR policy from a checkpoint before serving")
		maxSess  = flag.Int("max-sessions", 0, "live session cap (0 = 4096)")
		qDepth   = flag.Int("queue-depth", 0, "per-session command queue depth (0 = 8)")
		evlogF   = flag.String("eventlog", "", "record every session's flight-recorder stream (JSONL) to this file")
		ckptF    = flag.String("checkpoint", "mobiserve.ckpt", "drain checkpoint path written on SIGINT/SIGTERM")
		resume   = flag.Bool("resume", false, "restore live sessions from -checkpoint before serving (fresh start when it does not exist)")
		workers  = flag.Int("workers", 0, "parallelism bound for scenario building and SVM/RL training (0 = GOMAXPROCS)")
		trainWk  = flag.Int("train-workers", 0, "parallel rollout bound for RL training (0 = -workers)")
		verbose  = flag.Bool("v", false, "verbose (debug-level) logging")
	)
	flag.Parse()
	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := obs.NewLogger(os.Stderr, level, slog.String("cmd", "mobiserve"))

	cfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		fatal(logger, err)
	}
	cfg.Seed = *seed

	reg := obs.NewRegistry()
	reg.PublishExpvar("mobirescue")

	logger.Info("building scenario", slog.String("scale", *scale), slog.Int64("seed", *seed))
	sc, err := core.BuildScenario(cfg)
	if err != nil {
		fatal(logger, err)
	}
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Seed = *seed
	sysCfg.Teams = *teams
	sysCfg.Workers = *workers
	sysCfg.TrainWorkers = *trainWk
	sysCfg.Metrics = reg
	sysCfg.Logger = logger
	sys, err := core.NewSystem(sc, sysCfg)
	if err != nil {
		fatal(logger, err)
	}
	if *loadPol != "" {
		n, err := sys.LoadPolicy(*loadPol)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("policy warm-started", slog.String("path", *loadPol), slog.Uint64("episodes", n))
	}
	if *episodes > 0 {
		returns, err := sys.TrainRLParallel(*episodes)
		if err != nil {
			fatal(logger, err)
		}
		logger.Info("RL training complete", slog.Int("episodes", len(returns)))
	}
	world, err := core.NewSessionWorld(sys)
	if err != nil {
		fatal(logger, err)
	}

	var elog *eventlog.Log
	if *evlogF != "" {
		elog, err = eventlog.Create(*evlogF, sys.BuildManifest(*scale, cfg), eventlog.Options{})
		if err != nil {
			fatal(logger, err)
		}
		elog.EnableMetrics(reg)
	}

	svc, err := serve.NewService(world, serve.Config{
		MaxSessions: *maxSess,
		QueueDepth:  *qDepth,
		Log:         elog,
		Metrics:     reg,
	})
	if err != nil {
		fatal(logger, err)
	}
	if *resume {
		switch _, statErr := os.Stat(*ckptF); {
		case statErr == nil:
			if err := svc.Restore(*ckptF); err != nil {
				fatal(logger, err)
			}
			logger.Info("sessions restored from drain checkpoint",
				slog.String("path", *ckptF), slog.Int("sessions", svc.SessionCount()))
		case os.IsNotExist(statErr):
			logger.Info("no drain checkpoint; starting fresh", slog.String("path", *ckptF))
		default:
			fatal(logger, statErr)
		}
	}

	server, err := obs.StartServerWith(*addr, reg, svc.Mount)
	if err != nil {
		fatal(logger, err)
	}
	logger.Info("serving",
		slog.String("addr", server.Addr()),
		slog.String("sessions", "http://"+server.Addr()+"/api/sessions"),
		slog.String("metrics", "http://"+server.Addr()+"/metrics"))

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	<-sigCh
	go func() {
		<-sigCh
		logger.Error("second signal during drain; exiting immediately")
		os.Exit(1)
	}()

	logger.Info("draining", slog.Int("sessions", svc.SessionCount()), slog.String("checkpoint", *ckptF))
	if err := svc.Drain(*ckptF); err != nil {
		fatal(logger, err)
	}
	if err := server.Close(); err != nil {
		logger.Warn("closing server", slog.Any("err", err))
	}
	if elog != nil {
		if err := elog.Close(); err != nil {
			logger.Warn("closing event log", slog.Any("err", err))
		}
	}
	logger.Info("drain complete; resume with -resume", slog.String("checkpoint", *ckptF),
		slog.Int("exit", snapshot.StopExitCode))
	os.Exit(snapshot.StopExitCode)
}

func fatal(logger *slog.Logger, err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
