// Command benchscale measures the metro-scale prediction hot path over
// streaming synthetic population tiers (10K / 100K / 1M people) and
// writes BENCH_scale.json.
//
// Each tier builds a mobility.Streamer over the scenario city (O(people)
// memory, no materialized tracks), wraps it in the columnar
// PredictProvider, and reports:
//
//   - per-window decision wall-clock: cold Predict plus RegionTotals,
//     serial (Workers=1) and sharded parallel (Workers=0);
//   - peak heap (runtime.MemStats HeapInuse after the tier's windows)
//     and steady-state allocation per window once caches are warm;
//   - byte-identity witnesses: the serial and parallel distributions,
//     and the pre-aggregated RegionTotals against a direct aggregation
//     of the Predict map.
//
// The cross-tier section asserts the scaling contracts the gate checks
// (booleans survive `analyze bench-check -portable`; raw wall-clock
// fields use *_ns_per_window names, which the gate treats as
// informational on foreign hardware):
//
//   - sublinear_memory: peak heap grows strictly slower than the
//     population (shared city structures and O(segments) outputs
//     amortize);
//   - near_linear_decision_time: serial decision time grows no worse
//     than ~2.5x the population ratio;
//   - decision_within_budget per tier: a parallel cold window decision
//     stays interactive (10 s for the CI tiers, 120 s for 1M).
//
// The default sweep runs the 10K and 100K tiers; -full adds the 1M
// tier (minutes of wall-clock — run manually, not in CI). With -smoke
// the window count shrinks and no artifact is written; `make
// bench-scale-smoke` runs that in CI so the scale path cannot rot.
//
// Usage:
//
//	go run ./cmd/benchscale -out BENCH_scale.json [-scale small] [-seed 1] [-windows 6] [-full] [-smoke]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"reflect"
	"runtime"
	"time"

	"mobirescue/internal/core"
	"mobirescue/internal/mobility"
	"mobirescue/internal/obs"
	"mobirescue/internal/roadnet"
	"mobirescue/internal/svm"

	"os"
)

// tierResult is one population tier's measurements.
type tierResult struct {
	Name    string `json:"name"`
	People  int    `json:"people"`
	Windows int    `json:"windows"`
	// Wall-clock per cold 5-minute window (Predict + RegionTotals).
	// *_ns_per_window is informational across machines; the booleans
	// below carry the gate-checked claims.
	SerialNsPerWindow   float64 `json:"serial_ns_per_window"`
	ParallelNsPerWindow float64 `json:"parallel_ns_per_window"`
	WarmNsPerWindow     float64 `json:"warm_ns_per_window"`
	// PeakHeapBytes is HeapInuse after the tier's windows (post-GC).
	PeakHeapBytes      uint64  `json:"peak_heap_bytes"`
	HeapBytesPerCapita float64 `json:"heap_bytes_per_person"`
	// SteadyAllocPerWindow is TotalAlloc growth for one cold window
	// once the scratch pools are warm — the columnar loop's allocation
	// is O(touched segments), not O(people).
	SteadyAllocPerWindow float64 `json:"steady_alloc_bytes_per_window"`
	SteadyAllocPerCapita float64 `json:"steady_alloc_bytes_per_person"`
	// Identical: serial == parallel distribution at every window, and
	// RegionTotals == direct aggregation of the Predict map.
	Identical bool `json:"results_identical"`
	// DecisionWithinBudget: one parallel cold window stays under the
	// tier's latency budget (10 s up to 100K, 120 s at 1M).
	DecisionWithinBudget bool `json:"decision_within_budget"`
}

// scalingResult holds the cross-tier claims.
type scalingResult struct {
	PeopleRatio         float64 `json:"people_ratio"`
	HeapRatio           float64 `json:"heap_ratio"`
	SerialDecisionRatio float64 `json:"serial_decision_ratio"`
	// SublinearMemory: peak heap grew strictly slower than population.
	SublinearMemory bool `json:"sublinear_memory"`
	// NearLinearDecisionTime: serial decision time grew no worse than
	// 2.5x the population ratio.
	NearLinearDecisionTime bool `json:"near_linear_decision_time"`
}

// report is the BENCH_scale.json document.
type report struct {
	GeneratedAt time.Time       `json:"generated_at"`
	GoVersion   string          `json:"go_version"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	Smoke       bool            `json:"smoke"`
	Scale       string          `json:"scale"`
	Seed        int64           `json:"seed"`
	Tiers       []tierResult    `json:"tiers"`
	Scaling     []scalingResult `json:"scaling"`
}

// tierBudget is the per-window parallel latency budget for a tier.
func tierBudget(people int) time.Duration {
	if people > 100_000 {
		return 120 * time.Second
	}
	return 10 * time.Second
}

// evalWindows returns n consecutive 5-minute windows on the disaster's
// second day — the regime dispatch decisions actually run in.
func evalWindows(cfg mobility.Config, n int) []time.Time {
	base := cfg.DisasterStart.Add(26 * time.Hour)
	out := make([]time.Time, n)
	for i := range out {
		out[i] = base.Add(time.Duration(i) * 5 * time.Minute)
	}
	return out
}

// runTier measures one population tier.
func runTier(sc *core.Scenario, model *svm.Model, people, windows int) (tierResult, error) {
	tr := tierResult{
		Name:    fmt.Sprintf("people_%d", people),
		People:  people,
		Windows: windows,
	}
	mcfg := sc.Eval.Data.Config
	mcfg.NumPeople = people
	st, err := mobility.NewStreamer(sc.City, mcfg)
	if err != nil {
		return tr, err
	}
	prov, err := core.NewPredictProviderFromSource(sc.City, st, model, sc.Eval.Storm, sc.Elev, 0)
	if err != nil {
		return tr, err
	}
	ts := evalWindows(mcfg, windows)

	coldPass := func(workers int) (float64, []map[roadnet.SegmentID]float64) {
		prov.SetWorkers(workers)
		prov.ResetCache()
		dist := make([]map[roadnet.SegmentID]float64, len(ts))
		start := time.Now()
		for i, at := range ts {
			dist[i] = prov.Predict(at)
			prov.RegionTotals(at)
		}
		return float64(time.Since(start).Nanoseconds()) / float64(len(ts)), dist
	}

	var serialDist, parallelDist []map[roadnet.SegmentID]float64
	tr.SerialNsPerWindow, serialDist = coldPass(1)
	tr.ParallelNsPerWindow, parallelDist = coldPass(0)
	tr.DecisionWithinBudget = time.Duration(tr.ParallelNsPerWindow) < tierBudget(people)

	// Warm pass: cache hits through the singleflight.
	startWarm := time.Now()
	for _, at := range ts {
		prov.Predict(at)
		prov.RegionTotals(at)
	}
	tr.WarmNsPerWindow = float64(time.Since(startWarm).Nanoseconds()) / float64(len(ts))

	// Identity: serial == parallel per window, and RegionTotals ==
	// direct aggregation under dispatch's filters.
	tr.Identical = true
	g := sc.City.Graph
	numRegions := sc.City.NumRegions()
	for i, at := range ts {
		if !reflect.DeepEqual(serialDist[i], parallelDist[i]) {
			tr.Identical = false
			return tr, fmt.Errorf("tier %s window %v: serial and parallel distributions differ", tr.Name, at)
		}
		totals := prov.RegionTotals(at)
		want := make([]float64, numRegions+1)
		for seg, n := range serialDist[i] {
			if n <= 0 || int(seg) < 0 || int(seg) >= g.NumSegments() {
				continue
			}
			if r := g.Segment(seg).Region; r >= 1 && r <= numRegions {
				want[r] += n
			}
		}
		for r := range want {
			if totals[r] != want[r] {
				tr.Identical = false
				return tr, fmt.Errorf("tier %s window %v region %d: RegionTotals %v != aggregation %v",
					tr.Name, at, r, totals[r], want[r])
			}
		}
	}

	// Steady-state allocation: one more cold window after everything is
	// warmed — scratch pools populated, memos filled.
	prov.SetWorkers(0)
	prov.ResetCache()
	before := obs.ReadMem()
	prov.Predict(ts[0])
	prov.RegionTotals(ts[0])
	after := obs.ReadMem()
	tr.SteadyAllocPerWindow = float64(after.TotalAllocBytes - before.TotalAllocBytes)
	tr.SteadyAllocPerCapita = tr.SteadyAllocPerWindow / float64(people)

	// Peak heap with the tier live, after a GC so the reading is spans
	// actually held, not garbage awaiting collection.
	runtime.GC()
	tr.PeakHeapBytes = obs.ReadMem().HeapInuseBytes
	tr.HeapBytesPerCapita = float64(tr.PeakHeapBytes) / float64(people)
	return tr, nil
}

func main() {
	out := flag.String("out", "BENCH_scale.json", "output JSON path (- for stdout)")
	scale := flag.String("scale", "small", "scenario scale ("+core.ScaleNames+")")
	seed := flag.Int64("seed", 1, "scenario/SVM seed")
	windows := flag.Int("windows", 6, "5-minute windows per tier")
	full := flag.Bool("full", false, "include the 1M tier (minutes of wall-clock; run manually)")
	smoke := flag.Bool("smoke", false, "CI smoke mode: 2 windows, contracts only, artifact untouched")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("benchscale: ")

	if *smoke {
		*windows = 2
	}
	tiers := []int{10_000, 100_000}
	if *full {
		tiers = append(tiers, 1_000_000)
	}

	scCfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	scCfg.Seed = *seed
	sc, err := core.BuildScenario(scCfg)
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	model, err := core.TrainSVM(sc.City, sc.Train, sc.Elev, *seed)
	if err != nil {
		log.Fatalf("training SVM: %v", err)
	}

	rep := report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Smoke:       *smoke,
		Scale:       *scale,
		Seed:        *seed,
	}
	for _, people := range tiers {
		tr, err := runTier(sc, model, people, *windows)
		if err != nil {
			log.Fatal(err)
		}
		if !tr.DecisionWithinBudget {
			log.Fatalf("tier %s: parallel window decision %.2fs exceeds the %v budget",
				tr.Name, tr.ParallelNsPerWindow/1e9, tierBudget(people))
		}
		fmt.Printf("benchscale: %s — serial %.1f ms/window, parallel %.1f ms/window, peak heap %.1f MB, steady alloc %.2f B/person\n",
			tr.Name, tr.SerialNsPerWindow/1e6, tr.ParallelNsPerWindow/1e6,
			float64(tr.PeakHeapBytes)/1e6, tr.SteadyAllocPerCapita)
		rep.Tiers = append(rep.Tiers, tr)
		runtime.GC() // release the tier before building the next one
	}

	for i := 1; i < len(rep.Tiers); i++ {
		prev, cur := rep.Tiers[i-1], rep.Tiers[i]
		s := scalingResult{
			PeopleRatio:         float64(cur.People) / float64(prev.People),
			HeapRatio:           float64(cur.PeakHeapBytes) / float64(prev.PeakHeapBytes),
			SerialDecisionRatio: cur.SerialNsPerWindow / prev.SerialNsPerWindow,
		}
		s.SublinearMemory = s.HeapRatio < s.PeopleRatio
		s.NearLinearDecisionTime = s.SerialDecisionRatio < 2.5*s.PeopleRatio
		if !s.SublinearMemory {
			log.Fatalf("%s -> %s: peak heap ratio %.2f is not sublinear in the %.0fx population growth",
				prev.Name, cur.Name, s.HeapRatio, s.PeopleRatio)
		}
		if !s.NearLinearDecisionTime {
			log.Fatalf("%s -> %s: serial decision ratio %.2f is superlinear beyond tolerance (people ratio %.0fx)",
				prev.Name, cur.Name, s.SerialDecisionRatio, s.PeopleRatio)
		}
		rep.Scaling = append(rep.Scaling, s)
	}

	if *smoke {
		fmt.Println("benchscale: smoke ok (identity held, memory sublinear, decisions within budget)")
		return
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchscale: wrote %s (%d tiers)\n", *out, len(rep.Tiers))
}
