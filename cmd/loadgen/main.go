// Command loadgen drives mixed session traffic against a self-hosted
// serving stack and writes BENCH_serve.json — the serving layer's
// perf-regression artifact, gated by `analyze bench-check`.
//
// The run has three phases, all through the HTTP session API (the same
// handlers cmd/mobiserve mounts, minus the network):
//
//  1. ramp: -sessions long-lived sessions are created and held open by
//     -clients concurrent workers, pinning the peak-concurrency claim;
//  2. burst: every live session gets advance and inject traffic from
//     the shared worker pool (cross-session contention, 429 retries);
//  3. churn: -churn short session lifecycles (create, advance ×
//     -windows with a mid-life inject, close) run through the pool
//     while the ramped sessions stay live.
//
// The artifact reports sessions/sec (churn lifecycles), p99 create and
// advance latency (*_ns_per_op: gated on the baseline machine,
// informational elsewhere), peak heap, and backpressure retry counts,
// plus the two portable gate booleans:
//
//   - sustained_target_sessions: the service held -target concurrent
//     live sessions (default 1000);
//   - zero_errors: no request failed — backpressure 429s are retried,
//     anything else is an error.
//
// With -smoke the churn shrinks for CI; `make serve-smoke` runs that
// and gates the fresh artifact against the checked-in baseline with
// `analyze bench-check -portable`.
//
// Usage:
//
//	go run ./cmd/loadgen -out BENCH_serve.json [-scale small] [-seed 1] [-sessions 1000] [-target 1000] [-churn 2000] [-clients 16] [-windows 2] [-method greedy] [-smoke]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mobirescue/internal/core"
	"mobirescue/internal/obs"
	"mobirescue/internal/serve"
)

// report is the BENCH_serve.json document.
type report struct {
	GeneratedAt time.Time `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Smoke       bool      `json:"smoke"`
	Scale       string    `json:"scale"`
	Seed        int64     `json:"seed"`
	Method      string    `json:"method"`

	TargetSessions  int `json:"target_sessions"`
	RampSessions    int `json:"ramp_sessions"`
	ChurnLifecycles int `json:"churn_lifecycles"`
	Clients         int `json:"clients"`
	WindowsPerLife  int `json:"windows_per_lifecycle"`

	PeakConcurrentSessions int     `json:"peak_concurrent_sessions"`
	SessionsPerSec         float64 `json:"sessions_per_sec"`
	CreateP99NsPerOp       float64 `json:"create_p99_ns_per_op"`
	AdvanceP99NsPerOp      float64 `json:"advance_p99_ns_per_op"`
	PeakHeapBytes          uint64  `json:"peak_heap_bytes"`
	BackpressureRetries    int64   `json:"backpressure_retries"`
	Errors                 int64   `json:"errors"`

	// Gate booleans: portable claims `analyze bench-check -portable`
	// holds on any hardware.
	SustainedTargetSessions bool `json:"sustained_target_sessions"`
	ZeroErrors              bool `json:"zero_errors"`
}

// client drives the session API handler in-process, retrying
// backpressure like a well-behaved network client.
type client struct {
	h       http.Handler
	retries atomic.Int64
	errors  atomic.Int64
}

// do issues one request, retrying 429s (counting them) with the linear
// backoff a Retry-After-respecting client would use, scaled down to
// keep the benchmark honest about throughput but short in wall-clock.
func (c *client) do(method, path, body string) (int, []byte) {
	for attempt := 0; ; attempt++ {
		var r *http.Request
		if body == "" {
			r = httptest.NewRequest(method, path, nil)
		} else {
			r = httptest.NewRequest(method, path, bytes.NewReader([]byte(body)))
		}
		rr := httptest.NewRecorder()
		c.h.ServeHTTP(rr, r)
		if rr.Code != http.StatusTooManyRequests {
			return rr.Code, rr.Body.Bytes()
		}
		c.retries.Add(1)
		if attempt >= 1000 {
			c.errors.Add(1)
			return rr.Code, rr.Body.Bytes()
		}
		time.Sleep(time.Duration(attempt%10+1) * time.Millisecond)
	}
}

// expect records an error unless the request landed on wantStatus.
func (c *client) expect(method, path, body string, wantStatus int) []byte {
	code, resp := c.do(method, path, body)
	if code != wantStatus {
		c.errors.Add(1)
		log.Printf("loadgen: %s %s -> %d (want %d): %s", method, path, code, wantStatus, resp)
	}
	return resp
}

// latencies accumulates operation durations across workers.
type latencies struct {
	mu sync.Mutex
	ns []float64
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.ns = append(l.ns, float64(d.Nanoseconds()))
	l.mu.Unlock()
}

func (l *latencies) p99() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ns) == 0 {
		return 0
	}
	sort.Float64s(l.ns)
	idx := int(0.99 * float64(len(l.ns)-1))
	return l.ns[idx]
}

// forEach fans the indices [0,n) over `clients` workers.
func forEach(n, clients int, fn func(i int)) {
	var wg sync.WaitGroup
	idx := make(chan int, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

func main() {
	var (
		out      = flag.String("out", "BENCH_serve.json", "output JSON path (- for stdout)")
		scale    = flag.String("scale", "small", "scenario scale ("+core.ScaleNames+")")
		seed     = flag.Int64("seed", 1, "scenario/model seed")
		method   = flag.String("method", "greedy", "dispatch method sessions run")
		sessions = flag.Int("sessions", 1000, "long-lived sessions held open through the run")
		target   = flag.Int("target", 1000, "concurrent-session count the gate requires")
		churn    = flag.Int("churn", 2000, "short session lifecycles during the churn phase")
		clients  = flag.Int("clients", 16, "concurrent client workers")
		windows  = flag.Int("windows", 2, "advances per churn lifecycle")
		qDepth   = flag.Int("queue-depth", 0, "per-session command queue depth (0 = 8)")
		smoke    = flag.Bool("smoke", false, "CI smoke mode: shrink the churn phase (the concurrency target still holds)")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	if *smoke {
		*churn = 300
	}
	if *sessions < *target {
		log.Fatalf("-sessions %d below -target %d: the gate could never hold", *sessions, *target)
	}

	scCfg, err := core.ScenarioConfigForScale(*scale)
	if err != nil {
		log.Fatal(err)
	}
	scCfg.Seed = *seed
	sc, err := core.BuildScenario(scCfg)
	if err != nil {
		log.Fatalf("building scenario: %v", err)
	}
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Seed = *seed
	sys, err := core.NewSystem(sc, sysCfg)
	if err != nil {
		log.Fatalf("building system: %v", err)
	}
	world, err := core.NewSessionWorld(sys)
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	svc, err := serve.NewService(world, serve.Config{
		MaxSessions: *sessions + *clients + 1,
		QueueDepth:  *qDepth,
		Metrics:     reg,
	})
	if err != nil {
		log.Fatal(err)
	}
	c := &client{h: svc.Handler()}
	createLat := &latencies{}
	advanceLat := &latencies{}

	createBody := func(i int) string {
		return fmt.Sprintf(`{"method":%q,"seed":%d}`, *method, int64(i%97+1))
	}
	peakConcurrent := 0
	var peakMu sync.Mutex
	notePeak := func() {
		n := svc.SessionCount()
		peakMu.Lock()
		if n > peakConcurrent {
			peakConcurrent = n
		}
		peakMu.Unlock()
	}

	// Phase 1 — ramp: open the long-lived sessions.
	rampStart := time.Now()
	rampIDs := make([]string, *sessions)
	forEach(*sessions, *clients, func(i int) {
		opStart := time.Now()
		resp := c.expect("POST", "/api/sessions", createBody(i), http.StatusCreated)
		createLat.add(time.Since(opStart))
		var st serve.Status
		if err := json.Unmarshal(resp, &st); err != nil || st.ID == "" {
			c.errors.Add(1)
			return
		}
		rampIDs[i] = st.ID
		notePeak()
	})
	rampSecs := time.Since(rampStart).Seconds()
	log.Printf("ramp: %d sessions live in %.2fs (%.0f creates/s)",
		svc.SessionCount(), rampSecs, float64(*sessions)/rampSecs)

	// Phase 2 — burst: advance + inject traffic across every live
	// session from the shared pool.
	forEach(*sessions, *clients, func(i int) {
		id := rampIDs[i]
		if id == "" {
			return
		}
		opStart := time.Now()
		c.expect("POST", "/api/sessions/"+id+"/advance", `{"windows":1}`, http.StatusOK)
		advanceLat.add(time.Since(opStart))
		c.expect("POST", "/api/sessions/"+id+"/inject",
			fmt.Sprintf(`{"requests":[{"seg":%d,"in_s":300}]}`, i%8), http.StatusOK)
	})

	// Peak heap with the full session population live and warmed.
	runtime.GC()
	peakHeap := obs.ReadMem().HeapInuseBytes

	// Phase 3 — churn: short lifecycles while the ramped sessions stay
	// open, so creates/closes run against a full table.
	churnStart := time.Now()
	forEach(*churn, *clients, func(i int) {
		opStart := time.Now()
		resp := c.expect("POST", "/api/sessions", createBody(i+*sessions), http.StatusCreated)
		createLat.add(time.Since(opStart))
		var st serve.Status
		if err := json.Unmarshal(resp, &st); err != nil || st.ID == "" {
			c.errors.Add(1)
			return
		}
		notePeak()
		for w := 0; w < *windows; w++ {
			opStart = time.Now()
			c.expect("POST", "/api/sessions/"+st.ID+"/advance", `{"windows":1}`, http.StatusOK)
			advanceLat.add(time.Since(opStart))
			if w == 0 {
				c.expect("POST", "/api/sessions/"+st.ID+"/inject",
					fmt.Sprintf(`{"requests":[{"seg":%d,"in_s":120}]}`, i%8), http.StatusOK)
			}
		}
		c.expect("DELETE", "/api/sessions/"+st.ID, "", http.StatusOK)
	})
	churnSecs := time.Since(churnStart).Seconds()

	// Tear down the ramped sessions; the table must come back empty.
	forEach(*sessions, *clients, func(i int) {
		if rampIDs[i] == "" {
			return
		}
		c.expect("DELETE", "/api/sessions/"+rampIDs[i], "", http.StatusOK)
	})
	if n := svc.SessionCount(); n != 0 {
		c.errors.Add(1)
		log.Printf("session table holds %d sessions after teardown", n)
	}

	rep := report{
		GeneratedAt:     time.Now().UTC(),
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		Smoke:           *smoke,
		Scale:           *scale,
		Seed:            *seed,
		Method:          *method,
		TargetSessions:  *target,
		RampSessions:    *sessions,
		ChurnLifecycles: *churn,
		Clients:         *clients,
		WindowsPerLife:  *windows,

		PeakConcurrentSessions: peakConcurrent,
		SessionsPerSec:         float64(*churn) / churnSecs,
		CreateP99NsPerOp:       createLat.p99(),
		AdvanceP99NsPerOp:      advanceLat.p99(),
		PeakHeapBytes:          peakHeap,
		BackpressureRetries:    c.retries.Load(),
		Errors:                 c.errors.Load(),
	}
	rep.SustainedTargetSessions = peakConcurrent >= *target
	rep.ZeroErrors = rep.Errors == 0

	log.Printf("churn: %d lifecycles in %.2fs (%.0f sessions/s), peak %d concurrent, p99 advance %.2fms, peak heap %.1f MB, %d retries, %d errors",
		*churn, churnSecs, rep.SessionsPerSec, peakConcurrent,
		rep.AdvanceP99NsPerOp/1e6, float64(peakHeap)/1e6, rep.BackpressureRetries, rep.Errors)
	if !rep.SustainedTargetSessions {
		log.Fatalf("peak concurrency %d never reached the %d-session target", peakConcurrent, *target)
	}
	if !rep.ZeroErrors {
		log.Fatalf("%d requests failed", rep.Errors)
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadgen: wrote %s\n", *out)
}
