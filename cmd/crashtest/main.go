// Command crashtest is the kill -9 fuzz harness for the crash-safe run
// machinery (internal/snapshot, -snapshot-dir/-resume): it proves that
// a mobirescue run killed at an arbitrary moment and resumed — possibly
// several times — still produces a byte-identical flight-recorder
// stream, and that a damaged newest snapshot falls back to the previous
// valid generation.
//
// Usage:
//
//	crashtest -bin ./mobirescue [-runs N] [-min-kills N] [-scale small] [-episodes 8] [-workers 2] [-seed 7] [-kill-seed 1] [-min-delay 500ms] [-max-delay 7s] [-dir d] [-keep]
//
// Procedure:
//
//  1. Reference: run the binary uninterrupted with -eventlog and
//     -snapshot-dir; its event log is the ground truth.
//  2. Kill cycles: for each of -runs cycles (continuing until at least
//     -min-kills SIGKILLs have landed), launch the same command in a
//     fresh directory, SIGKILL it after a random delay drawn from
//     [-min-delay, -max-delay], then re-launch with -resume (killing
//     again at a new random delay) until an attempt exits 0. The final
//     event log must equal the reference byte for byte.
//  3. Corruption drills: take a killed run with at least two snapshot
//     generations, damage the newest snapshot file (truncate it, then
//     in a second drill flip one byte), resume, and require both that
//     the run falls back to the previous valid snapshot and that the
//     final event log is still byte-identical.
//
// The kill schedule is driven by -kill-seed, so a failing fuzz run is
// reproducible. Exit code 0 means every cycle and drill passed;
// anything else is a determinism or recovery failure.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"mobirescue/internal/obs/eventlog"
)

func main() {
	var (
		bin      = flag.String("bin", "", "path to the mobirescue binary (required)")
		runs     = flag.Int("runs", 4, "kill/resume cycles to run")
		minKills = flag.Int("min-kills", 10, "keep adding cycles until this many SIGKILLs have landed")
		scale    = flag.String("scale", "small", "scenario scale passed to the binary")
		episodes = flag.Int("episodes", 8, "training episodes passed to the binary")
		workers  = flag.Int("workers", 2, "worker bound passed to the binary")
		seed     = flag.Int64("seed", 7, "run seed passed to the binary")
		killSeed = flag.Int64("kill-seed", 1, "seed for the kill-delay schedule")
		minDelay = flag.Duration("min-delay", 500*time.Millisecond, "earliest kill after launch")
		maxDelay = flag.Duration("max-delay", 7*time.Second, "latest kill after launch")
		dirFlag  = flag.String("dir", "", "work directory (default: a fresh temp dir)")
		keep     = flag.Bool("keep", false, "keep the work directory on success")
	)
	flag.Parse()
	if *bin == "" {
		fmt.Fprintln(os.Stderr, "crashtest: -bin is required")
		os.Exit(2)
	}
	binPath, err := filepath.Abs(*bin)
	if err != nil {
		fatal(err)
	}

	dir := *dirFlag
	if dir == "" {
		if dir, err = os.MkdirTemp("", "crashtest-"); err != nil {
			fatal(err)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	h := &harness{
		bin:      binPath,
		dir:      dir,
		rng:      rand.New(rand.NewSource(*killSeed)),
		minDelay: *minDelay,
		maxDelay: *maxDelay,
		args: []string{
			"-method", "mr",
			"-scale", *scale,
			"-episodes", strconv.Itoa(*episodes),
			"-workers", strconv.Itoa(*workers),
			"-seed", strconv.FormatInt(*seed, 10),
		},
	}

	fmt.Printf("crashtest: work dir %s\n", dir)
	ref, refDur, err := h.reference()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("crashtest: reference run %v, event log %d bytes\n", refDur.Round(time.Millisecond), len(ref))

	failures := 0
	for cycle := 1; cycle <= *runs || h.kills < *minKills; cycle++ {
		if err := h.killCycle(cycle, ref); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: FAIL cycle %d: %v\n", cycle, err)
			failures++
		}
		if cycle > *runs*10 {
			fmt.Fprintf(os.Stderr, "crashtest: FAIL: %d cycles yielded only %d kills; runs too short for the kill window\n", cycle, h.kills)
			failures++
			break
		}
	}
	for _, drill := range []string{"truncate", "bitflip"} {
		if err := h.corruptionDrill(drill, ref); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: FAIL %s drill: %v\n", drill, err)
			failures++
		}
	}

	fmt.Printf("crashtest: %d kills, %d resumes, %d fallbacks, %d failures\n",
		h.kills, h.resumes, h.fallbacks, failures)
	if failures > 0 {
		os.Exit(1)
	}
	if !*keep && *dirFlag == "" {
		os.RemoveAll(dir)
	}
	fmt.Println("crashtest: PASS")
}

type harness struct {
	bin      string
	dir      string
	args     []string
	rng      *rand.Rand
	minDelay time.Duration
	maxDelay time.Duration

	kills     int
	resumes   int
	fallbacks int
}

// launch starts one invocation in runDir and SIGKILLs it after delay
// unless it exits first. It returns whether the run completed (exit 0)
// and the combined output of the attempt.
func (h *harness) launch(runDir string, resume bool, delay time.Duration) (done bool, out []byte, err error) {
	args := append(append([]string(nil), h.args...),
		"-eventlog", filepath.Join(runDir, "run.jsonl"),
		"-snapshot-dir", filepath.Join(runDir, "snaps"))
	if resume {
		args = append(args, "-resume")
	}
	cmd := exec.Command(h.bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		return false, nil, err
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	if delay > 0 {
		select {
		case err = <-waited:
		case <-time.After(delay):
			cmd.Process.Kill()
			h.kills++
			<-waited
			return false, buf.Bytes(), nil
		}
	} else {
		err = <-waited
	}
	if err != nil {
		return false, buf.Bytes(), fmt.Errorf("run exited abnormally: %w\n%s", err, buf.Bytes())
	}
	return true, buf.Bytes(), nil
}

func (h *harness) delay() time.Duration {
	span := h.maxDelay - h.minDelay
	if span <= 0 {
		return h.minDelay
	}
	return h.minDelay + time.Duration(h.rng.Int63n(int64(span)))
}

// reference runs the command uninterrupted and returns its event log.
func (h *harness) reference() ([]byte, time.Duration, error) {
	runDir := filepath.Join(h.dir, "ref")
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	done, out, err := h.launch(runDir, false, 0)
	if err != nil {
		return nil, 0, err
	}
	if !done {
		return nil, 0, fmt.Errorf("reference run did not complete\n%s", out)
	}
	log, err := os.ReadFile(filepath.Join(runDir, "run.jsonl"))
	return log, time.Since(start), err
}

// resumeToCompletion re-launches with -resume (killing at fresh random
// delays) until an attempt exits 0, then compares the event log against
// the reference.
func (h *harness) resumeToCompletion(runDir string, ref []byte) error {
	for attempt := 0; attempt < 50; attempt++ {
		h.resumes++
		done, _, err := h.launch(runDir, true, h.delay())
		if err != nil {
			return err
		}
		if done {
			return h.compare(runDir, ref)
		}
	}
	return fmt.Errorf("no attempt completed after 50 resumes")
}

func (h *harness) compare(runDir string, ref []byte) error {
	path := filepath.Join(runDir, "run.jsonl")
	got, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if bytes.Equal(got, ref) {
		return nil // byte-identical, trivially zero divergence
	}
	// Pinpoint the first divergence the way `analyze diff` would.
	var detail bytes.Buffer
	a, errA := eventlog.Read(bytes.NewReader(ref))
	b, errB := eventlog.Read(bytes.NewReader(got))
	if errA == nil && errB == nil {
		eventlog.WriteDiff(&detail, eventlog.Diff(a, b), "reference", path)
	} else {
		fmt.Fprintf(&detail, "reference parse: %v; resumed parse: %v", errA, errB)
	}
	return fmt.Errorf("event log diverged from reference (%d vs %d bytes) in %s\n%s",
		len(got), len(ref), runDir, detail.Bytes())
}

// killCycle runs one fresh-start → SIGKILL → resume-until-done cycle.
func (h *harness) killCycle(cycle int, ref []byte) error {
	runDir := filepath.Join(h.dir, fmt.Sprintf("cycle-%02d", cycle))
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return err
	}
	delay := h.delay()
	done, _, err := h.launch(runDir, false, delay)
	if err != nil {
		return err
	}
	if done {
		// The draw outlived the run; the cycle still checks determinism.
		fmt.Printf("crashtest: cycle %d completed before the %v kill\n", cycle, delay.Round(time.Millisecond))
		return h.compare(runDir, ref)
	}
	fmt.Printf("crashtest: cycle %d killed at %v, resuming\n", cycle, delay.Round(time.Millisecond))
	return h.resumeToCompletion(runDir, ref)
}

// corruptionDrill kills a run once it holds at least two snapshot
// generations, damages the newest one, and requires the resume to fall
// back to the previous generation and still finish byte-identically.
func (h *harness) corruptionDrill(mode string, ref []byte) error {
	runDir := filepath.Join(h.dir, "drill-"+mode)
	if err := os.MkdirAll(runDir, 0o755); err != nil {
		return err
	}
	snapsDir := filepath.Join(runDir, "snaps")
	resume := false
	var snaps []string
	for attempt := 0; ; attempt++ {
		if attempt >= 50 {
			return fmt.Errorf("never reached two snapshot generations mid-run")
		}
		done, _, err := h.launch(runDir, resume, h.delay())
		if err != nil {
			return err
		}
		resume = true
		if snaps, err = snapshotFiles(snapsDir); err != nil {
			return err
		}
		if !done && len(snaps) >= 2 {
			break
		}
		if done {
			// Finished before we could catch it mid-run: start over.
			if err := os.RemoveAll(runDir); err != nil {
				return err
			}
			if err := os.MkdirAll(runDir, 0o755); err != nil {
				return err
			}
			resume = false
		}
	}

	newest := snaps[len(snaps)-1]
	if err := damage(newest, mode); err != nil {
		return err
	}
	fmt.Printf("crashtest: %s drill damaged %s (%d generations), resuming\n",
		mode, filepath.Base(newest), len(snaps))
	h.resumes++
	done, out, err := h.launch(runDir, true, 0)
	if err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("resume after %s did not complete\n%s", mode, out)
	}
	if !bytes.Contains(out, []byte("skipping damaged snapshot")) {
		return fmt.Errorf("resume after %s did not report the damaged snapshot\n%s", mode, out)
	}
	h.fallbacks++
	return h.compare(runDir, ref)
}

// snapshotFiles lists the snapshot generations in dir, oldest first.
func snapshotFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".mrsnap" {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	return names, nil
}

// damage corrupts path: "truncate" halves it, "bitflip" flips one bit
// in the middle (inside the checksummed region).
func damage(path, mode string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	switch mode {
	case "truncate":
		data = data[:len(data)/2]
	case "bitflip":
		data[len(data)/2] ^= 0x10
	default:
		return fmt.Errorf("unknown damage mode %q", mode)
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crashtest:", err)
	os.Exit(1)
}
