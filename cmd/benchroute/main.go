// Command benchroute measures the routing fast path and the evaluation
// pipeline's parallel speedup, and writes the results as JSON (the
// BENCH_routing.json artifact `make bench` produces).
//
// Two kinds of numbers are reported:
//
//   - Micro-benchmarks of the roadnet layer, run through
//     testing.Benchmark on the default generated city: steady-state
//     workspace Dijkstra (the 0 allocs/op contract), the cold
//     caller-owned path, the epoch-cache hit path (the >=10x contract),
//     and full position-to-segment route planning.
//
//   - Wall-clock of dispatcher Decide calls with the window-scoped tree
//     cache warm vs invalidated before every call — the latter is what
//     the pre-cache implementation effectively did (recompute every
//     shortest-path tree on every use), so the ratio is the cache's
//     real per-decision-window win.
//
//   - Wall-clock of core.RunComparison — the three-method evaluation —
//     on one trained system: an untimed warm-up, then fully serial
//     (Workers=1), then the parallel worker pool (Workers=0, i.e.
//     GOMAXPROCS). All runs must produce byte-identical figures;
//     benchroute fails loudly if they do not, so the determinism
//     contract is checked on every bench run, not just in CI tests.
//
// Usage:
//
//	go run ./cmd/benchroute -out BENCH_routing.json [-scale small] [-seed 1] [-episodes 2]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"mobirescue/internal/core"
	"mobirescue/internal/roadnet"
	"mobirescue/internal/sim"
)

// benchResult is one micro-benchmark line: the subset of
// testing.BenchmarkResult that the acceptance criteria reference.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// comparisonResult is the RunComparison wall-clock measurement. A full
// untimed warm-up comparison runs first so the timed serial and
// parallel runs see the same warm caches — otherwise the second run
// inherits the first run's prediction cache and the "speedup" is a
// cache artifact, not parallelism.
type comparisonResult struct {
	Scale         string `json:"scale"`
	Seed          int64  `json:"seed"`
	TrainEpisodes int    `json:"train_episodes"`
	Workers       int    `json:"workers"`
	// WarmupSeconds is the first (cold-cache, serial) comparison run.
	WarmupSeconds   float64 `json:"warmup_seconds"`
	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	// ParallelSpeedup is serial/parallel on warm caches. On a
	// single-CPU host this is ~1.0 by construction; the pool only
	// helps when GOMAXPROCS > 1.
	ParallelSpeedup float64 `json:"parallel_speedup"`
	Identical       bool    `json:"results_identical"`
}

// decideResult measures one dispatcher's per-window Decide wall-clock
// with the window-scoped tree cache warm versus invalidated before
// every call — the latter approximates the seed implementation, which
// recomputed every shortest-path tree on every use. The speedup here is
// the tentpole's headline number and must be >= 2x.
type decideResult struct {
	Method          string  `json:"method"`
	CachedNsPerOp   float64 `json:"cached_ns_per_op"`
	UncachedNsPerOp float64 `json:"uncached_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

// report is the BENCH_routing.json document.
type report struct {
	GeneratedAt time.Time        `json:"generated_at"`
	GoVersion   string           `json:"go_version"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	Routing     []benchResult    `json:"routing"`
	Decide      []decideResult   `json:"decide"`
	Comparison  comparisonResult `json:"comparison"`
}

func toResult(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// routingBenchmarks mirrors internal/roadnet's bench_test.go through the
// package's public API, so the JSON artifact and `go test -bench` agree
// on what is being measured.
func routingBenchmarks() ([]benchResult, error) {
	city, err := roadnet.GenerateCity(roadnet.DefaultGenConfig())
	if err != nil {
		return nil, fmt.Errorf("generating bench city: %w", err)
	}
	g := city.Graph
	var out []benchResult

	// Steady-state workspace Dijkstra: the 0 allocs/op contract.
	{
		r := roadnet.NewRouter(g, nil)
		ws := roadnet.NewWorkspace()
		r.TreeInto(ws, city.Depot)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.TreeInto(ws, city.Depot)
			}
		})
		out = append(out, toResult("tree_workspace", res))
	}

	// Cold caller-owned tree (the seed implementation's only mode).
	{
		r := roadnet.NewRouter(g, nil)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.Tree(city.Depot)
			}
		})
		out = append(out, toResult("tree_cold", res))
	}

	// Epoch-cache hit: must be >=10x faster than tree_cold.
	{
		r := roadnet.NewRouter(g, nil)
		r.CachedTree(city.Depot)
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.CachedTree(city.Depot)
			}
		})
		out = append(out, toResult("tree_cached", res))
	}

	// Full position-to-segment route on a warm cache.
	{
		r := roadnet.NewRouter(g, nil)
		pos := roadnet.Position{Seg: g.Out(city.Depot)[0]}
		target := roadnet.SegmentID(g.NumSegments() - 1)
		if _, err := r.RouteToSegmentEnd(pos, target); err != nil {
			return nil, fmt.Errorf("route fixture unreachable: %w", err)
		}
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.RouteToSegmentEnd(pos, target); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, toResult("route_to_segment_end", res))
	}
	return out, nil
}

// buildSystem constructs scenario and trained system for the wall-clock
// measurements.
func buildSystem(scale string, seed int64, episodes int) (*core.Scenario, *core.System, error) {
	scCfg, err := core.ScenarioConfigForScale(scale)
	if err != nil {
		return nil, nil, err
	}
	sc, err := core.BuildScenario(scCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("building scenario: %w", err)
	}
	sysCfg := core.DefaultSystemConfig()
	sysCfg.Seed = seed
	sys, err := core.NewSystem(sc, sysCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("building system: %w", err)
	}
	if _, err := sys.TrainRL(episodes); err != nil {
		return nil, nil, fmt.Errorf("training RL: %w", err)
	}
	return sc, sys, nil
}

// decideSnapshot builds a dispatcher-visible snapshot of the evaluation
// day at noon with the full fleet idle (the root bench_test.go fixture,
// reproduced through the exported API).
func decideSnapshot(sc *core.Scenario, sys *core.System) (*sim.Snapshot, error) {
	city := sc.City
	ep := sc.Eval
	at := ep.Data.Config.Start.Add(time.Duration(ep.PeakRequestDay())*24*time.Hour + 12*time.Hour)
	cost := sim.RescueCost{Base: ep.Disaster(city.Graph).CostAt(at)}
	snap := &sim.Snapshot{
		Time:   at,
		City:   city,
		Cost:   cost,
		Router: roadnet.NewRouter(city.Graph, cost),
	}
	starts, err := core.VehicleStarts(city, sys.Teams, 1)
	if err != nil {
		return nil, err
	}
	for i, pos := range starts {
		snap.Vehicles = append(snap.Vehicles, sim.VehicleState{
			ID: sim.VehicleID(i), Pos: pos, Phase: sim.PhaseIdle,
		})
	}
	for i, r := range core.RequestsForDay(ep, ep.PeakRequestDay()) {
		if !r.AppearAt.After(at) {
			snap.ActiveRequests = append(snap.ActiveRequests, sim.RequestState{
				ID: sim.RequestID(i), Seg: r.Seg, AppearAt: r.AppearAt,
			})
		}
	}
	return snap, nil
}

// decideWallClock times dispatcher Decide calls with the snapshot
// router's tree cache warm vs invalidated before every call (the
// seed-equivalent recompute-per-use behavior).
func decideWallClock(sc *core.Scenario, sys *core.System) ([]decideResult, error) {
	snap, err := decideSnapshot(sc, sys)
	if err != nil {
		return nil, err
	}
	rescue, err := sys.NewRescueBaseline()
	if err != nil {
		return nil, err
	}
	sys.MR.SetTraining(false)
	dispatchers := []struct {
		name   string
		decide func() int
	}{
		{"mobirescue", func() int { orders, _ := sys.MR.Decide(snap); return len(orders) }},
		{"rescue", func() int { orders, _ := rescue.Decide(snap); return len(orders) }},
	}
	var out []decideResult
	for _, d := range dispatchers {
		if n := d.decide(); n == 0 { // warm-up + sanity
			return nil, fmt.Errorf("%s issued no orders", d.name)
		}
		cached := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.decide()
			}
		})
		uncached := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snap.Router.Invalidate()
				d.decide()
			}
		})
		c := float64(cached.T.Nanoseconds()) / float64(cached.N)
		u := float64(uncached.T.Nanoseconds()) / float64(uncached.N)
		out = append(out, decideResult{
			Method:          d.name,
			CachedNsPerOp:   c,
			UncachedNsPerOp: u,
			Speedup:         u / c,
		})
	}
	return out, nil
}

// comparisonWallClock times RunComparison serial vs parallel on warm
// caches. The figures of both timed runs are marshaled and compared
// byte-for-byte: the worker pool must be a pure latency optimization.
func comparisonWallClock(sys *core.System, scale string, seed int64, episodes int) (comparisonResult, error) {
	var cr comparisonResult
	run := func(workers int) ([]byte, time.Duration, error) {
		sys.Config.Workers = workers
		start := time.Now()
		cmp, err := sys.RunComparison()
		if err != nil {
			return nil, 0, err
		}
		elapsed := time.Since(start)
		// Encode every comparison figure; this is the byte-identity
		// witness.
		doc, err := json.Marshal(map[string]any{
			"fig9":  cmp.Fig9(),
			"fig11": cmp.Fig11(),
			"fig13": cmp.Fig13(),
			"fig14": cmp.Fig14(),
		})
		return doc, elapsed, err
	}

	// Warm-up: populate the prediction and routing caches so the timed
	// serial/parallel pair differ only in worker count.
	warmDoc, warmT, err := run(1)
	if err != nil {
		return cr, fmt.Errorf("warm-up comparison: %w", err)
	}
	serialDoc, serialT, err := run(1)
	if err != nil {
		return cr, fmt.Errorf("serial comparison: %w", err)
	}
	parallelDoc, parallelT, err := run(0) // GOMAXPROCS
	if err != nil {
		return cr, fmt.Errorf("parallel comparison: %w", err)
	}

	cr = comparisonResult{
		Scale:           scale,
		Seed:            seed,
		TrainEpisodes:   episodes,
		Workers:         runtime.GOMAXPROCS(0),
		WarmupSeconds:   warmT.Seconds(),
		SerialSeconds:   serialT.Seconds(),
		ParallelSeconds: parallelT.Seconds(),
		ParallelSpeedup: serialT.Seconds() / parallelT.Seconds(),
		Identical: string(serialDoc) == string(parallelDoc) &&
			string(warmDoc) == string(serialDoc),
	}
	if !cr.Identical {
		return cr, fmt.Errorf("serial and parallel RunComparison figures differ — determinism contract broken")
	}
	return cr, nil
}

func main() {
	out := flag.String("out", "BENCH_routing.json", "output JSON path (- for stdout)")
	scale := flag.String("scale", "small", "scenario scale for the comparison wall-clock (small|paper)")
	seed := flag.Int64("seed", 1, "system seed")
	episodes := flag.Int("episodes", 2, "RL training episodes before the timed comparison")
	flag.Parse()

	routing, err := routingBenchmarks()
	if err != nil {
		log.Fatalf("benchroute: %v", err)
	}
	sc, sys, err := buildSystem(*scale, *seed, *episodes)
	if err != nil {
		log.Fatalf("benchroute: %v", err)
	}
	decide, err := decideWallClock(sc, sys)
	if err != nil {
		log.Fatalf("benchroute: %v", err)
	}
	cmp, err := comparisonWallClock(sys, *scale, *seed, *episodes)
	if err != nil {
		log.Fatalf("benchroute: %v", err)
	}
	rep := report{
		GeneratedAt: time.Now().UTC(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Routing:     routing,
		Decide:      decide,
		Comparison:  cmp,
	}
	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("benchroute: %v", err)
	}
	doc = append(doc, '\n')
	if *out == "-" {
		os.Stdout.Write(doc)
		return
	}
	if err := os.WriteFile(*out, doc, 0o644); err != nil {
		log.Fatalf("benchroute: %v", err)
	}
	best := 0.0
	for _, d := range decide {
		if d.Speedup > best {
			best = d.Speedup
		}
	}
	fmt.Printf("benchroute: wrote %s (cached tree %.0f ns/op, decide cache speedup up to %.2fx, parallel speedup %.2fx)\n",
		*out, pick(routing, "tree_cached"), best, cmp.ParallelSpeedup)
}

// pick returns the ns/op of the named routing benchmark (0 if missing).
func pick(rs []benchResult, name string) float64 {
	for _, r := range rs {
		if r.Name == name {
			return r.NsPerOp
		}
	}
	return 0
}
